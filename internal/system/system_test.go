package system

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"time"

	"cowbird/internal/core"
	"cowbird/internal/rings"
)

func startSystem(t *testing.T, mutate func(*Config)) *System {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Spot.ProbeInterval = 2 * time.Microsecond
	cfg.P4.ProbeInterval = 2 * time.Microsecond
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// waitIDs polls until all ids complete or the deadline passes.
func waitIDs(t *testing.T, g *core.PollGroup, n int, timeout time.Duration) []core.ReqID {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var out []core.ReqID
	for len(out) < n && time.Now().Before(deadline) {
		out = append(out, g.Wait(n-len(out), 50*time.Millisecond)...)
	}
	if len(out) < n {
		t.Fatalf("timed out: %d of %d completions", len(out), n)
	}
	return out
}

func testReadRoundTrip(t *testing.T, kind EngineKind) {
	s := startSystem(t, func(c *Config) { c.Engine = kind })
	want := bytes.Repeat([]byte("cowbird!"), 32) // 256 B
	if err := s.Pool.Poke(0, 4096, want); err != nil {
		t.Fatal(err)
	}
	th, _ := s.Client.Thread(0)
	dest := make([]byte, len(want))
	id, err := th.AsyncRead(0, 4096, dest)
	if err != nil {
		t.Fatal(err)
	}
	g := th.PollCreate()
	if err := g.Add(id); err != nil {
		t.Fatal(err)
	}
	done := waitIDs(t, g, 1, 10*time.Second)
	if done[0] != id {
		t.Fatalf("completed %v, want %v", done[0], id)
	}
	if !bytes.Equal(dest, want) {
		t.Fatalf("read data mismatch: got %q", dest[:16])
	}
}

func testWriteRoundTrip(t *testing.T, kind EngineKind) {
	s := startSystem(t, func(c *Config) { c.Engine = kind })
	th, _ := s.Client.Thread(0)
	data := bytes.Repeat([]byte{0xCD}, 512)
	id, err := th.AsyncWrite(0, data, 8192)
	if err != nil {
		t.Fatal(err)
	}
	g := th.PollCreate()
	if err := g.Add(id); err != nil {
		t.Fatal(err)
	}
	waitIDs(t, g, 1, 10*time.Second)
	got, err := s.Pool.Peek(0, 8192, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("write did not reach the memory pool")
	}
}

// testReadAfterWrite checks RAW linearizability: a read issued immediately
// after an overlapping write — with no waiting in between — must observe
// the written data.
func testReadAfterWrite(t *testing.T, kind EngineKind) {
	s := startSystem(t, func(c *Config) { c.Engine = kind })
	th, _ := s.Client.Thread(0)
	g := th.PollCreate()
	for round := 0; round < 20; round++ {
		data := bytes.Repeat([]byte{byte(round + 1)}, 128)
		wid, err := th.AsyncWrite(0, data, 1024)
		if err != nil {
			t.Fatal(err)
		}
		dest := make([]byte, 128)
		rid, err := th.AsyncRead(0, 1024, dest)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Add(wid); err != nil {
			t.Fatal(err)
		}
		if err := g.Add(rid); err != nil {
			t.Fatal(err)
		}
		waitIDs(t, g, 2, 10*time.Second)
		if !bytes.Equal(dest, data) {
			t.Fatalf("round %d: read-after-write returned stale data: got %d want %d", round, dest[0], data[0])
		}
	}
}

func testMixedWorkload(t *testing.T, kind EngineKind) {
	s := startSystem(t, func(c *Config) {
		c.Engine = kind
		c.Threads = 3
	})
	var wg sync.WaitGroup
	for ti := 0; ti < 3; ti++ {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			th, err := s.Client.Thread(ti)
			if err != nil {
				t.Error(err)
				return
			}
			rng := rand.New(rand.NewSource(int64(ti)))
			g := th.PollCreate()
			base := uint64(ti) * 1 << 20 // disjoint pool slices per thread
			// Write a pattern, then read it back, across many offsets.
			const ops = 60
			bufs := make([][]byte, ops)
			want := make([][]byte, ops)
			for i := 0; i < ops; i++ {
				size := rng.Intn(900) + 8
				data := make([]byte, size)
				rng.Read(data)
				want[i] = data
				off := base + uint64(i)*1024
				id, err := th.AsyncWrite(0, data, off)
				if err != nil {
					t.Errorf("thread %d write %d: %v", ti, i, err)
					return
				}
				if err := g.Add(id); err != nil {
					t.Error(err)
					return
				}
				bufs[i] = make([]byte, size)
				rid, err := th.AsyncRead(0, off, bufs[i])
				if err != nil {
					t.Errorf("thread %d read %d: %v", ti, i, err)
					return
				}
				if err := g.Add(rid); err != nil {
					t.Error(err)
					return
				}
			}
			deadline := time.Now().Add(30 * time.Second)
			got := 0
			for got < 2*ops && time.Now().Before(deadline) {
				got += len(g.Wait(2*ops-got, 100*time.Millisecond))
			}
			if got != 2*ops {
				t.Errorf("thread %d: %d of %d completions", ti, got, 2*ops)
				return
			}
			for i := range bufs {
				if !bytes.Equal(bufs[i], want[i]) {
					t.Errorf("thread %d op %d: data mismatch", ti, i)
					return
				}
			}
		}(ti)
	}
	wg.Wait()
}

// testRingWrapWithRetry drives enough traffic through tiny rings to wrap
// them several times, exercising the retry-on-full path.
func testRingWrapWithRetry(t *testing.T, kind EngineKind) {
	s := startSystem(t, func(c *Config) {
		c.Engine = kind
		c.Layout = rings.Layout{MetaEntries: 8, ReqDataBytes: 2048, RespDataBytes: 2048}
	})
	th, _ := s.Client.Thread(0)
	g := th.PollCreate()
	const ops = 100
	pending := 0
	verify := make(map[core.ReqID]func() bool)
	bufs := make([][]byte, 0, ops)
	deadline := time.Now().Add(30 * time.Second)
	for i := 0; i < ops; i++ {
		data := bytes.Repeat([]byte{byte(i)}, 300)
		off := uint64(i%16) * 512
		for {
			id, err := th.AsyncWrite(0, data, off)
			if err == nil {
				if err := g.Add(id); err != nil {
					t.Fatal(err)
				}
				pending++
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("write %d never fit: %v", i, err)
			}
			pending -= len(g.Wait(pending, 10*time.Millisecond))
		}
		dest := make([]byte, 300)
		bufs = append(bufs, dest)
		for {
			id, err := th.AsyncRead(0, off, dest)
			if err == nil {
				if err := g.Add(id); err != nil {
					t.Fatal(err)
				}
				pending++
				_ = verify
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("read %d never fit: %v", i, err)
			}
			pending -= len(g.Wait(pending, 10*time.Millisecond))
		}
	}
	for pending > 0 && time.Now().Before(deadline) {
		pending -= len(g.Wait(pending, 100*time.Millisecond))
	}
	if pending != 0 {
		t.Fatalf("%d requests never completed", pending)
	}
	// Each read followed its overlapping write: RAW means it must have
	// seen that write's data.
	for i, b := range bufs {
		if b[0] != byte(i) || b[299] != byte(i) {
			t.Fatalf("read %d returned stale/corrupt data (%d)", i, b[0])
		}
	}
}

func TestSpotReadRoundTrip(t *testing.T)  { testReadRoundTrip(t, EngineSpot) }
func TestSpotWriteRoundTrip(t *testing.T) { testWriteRoundTrip(t, EngineSpot) }
func TestSpotReadAfterWrite(t *testing.T) { testReadAfterWrite(t, EngineSpot) }
func TestSpotMixedWorkload(t *testing.T)  { testMixedWorkload(t, EngineSpot) }
func TestSpotRingWrap(t *testing.T)       { testRingWrapWithRetry(t, EngineSpot) }

func TestP4ReadRoundTrip(t *testing.T)  { testReadRoundTrip(t, EngineP4) }
func TestP4WriteRoundTrip(t *testing.T) { testWriteRoundTrip(t, EngineP4) }
func TestP4ReadAfterWrite(t *testing.T) { testReadAfterWrite(t, EngineP4) }
func TestP4MixedWorkload(t *testing.T)  { testMixedWorkload(t, EngineP4) }
func TestP4RingWrap(t *testing.T)       { testRingWrapWithRetry(t, EngineP4) }

// TestSpotBatchingReducesResponseWrites compares batching on vs off: with
// batching, contiguous read responses coalesce into fewer RDMA writes.
func TestSpotBatchingReducesResponseWrites(t *testing.T) {
	run := func(batch int) (batches, reads int64) {
		s := startSystem(t, func(c *Config) {
			c.Engine = EngineSpot
			c.Spot.BatchSize = batch
			// A long probe interval lets requests pile up so one round
			// sees many entries.
			c.Spot.ProbeInterval = 3 * time.Millisecond
		})
		th, _ := s.Client.Thread(0)
		g := th.PollCreate()
		const ops = 64
		dest := make([]byte, 64)
		for i := 0; i < ops; i++ {
			id, err := th.AsyncRead(0, uint64(i*64), dest)
			if err != nil {
				t.Fatal(err)
			}
			if err := g.Add(id); err != nil {
				t.Fatal(err)
			}
		}
		waitIDs(t, g, ops, 20*time.Second)
		st := s.Spot.Stats()
		return st.ResponseBatches, st.ReadsExecuted
	}
	b1, r1 := run(1)
	b32, r32 := run(32)
	if r1 != 64 || r32 != 64 {
		t.Fatalf("reads executed: %d, %d; want 64", r1, r32)
	}
	if b1 != 64 {
		t.Fatalf("batching disabled produced %d response writes, want 64", b1)
	}
	if b32 >= b1 {
		t.Fatalf("batching did not reduce response writes: %d vs %d", b32, b1)
	}
}

// TestP4RecyclesPackets confirms the switch transforms packets rather than
// generating them: after a workload, recycled >= reads+writes and probes
// were paced.
func TestP4PacketRecyclingStats(t *testing.T) {
	s := startSystem(t, func(c *Config) { c.Engine = EngineP4 })
	th, _ := s.Client.Thread(0)
	g := th.PollCreate()
	dest := make([]byte, 256)
	for i := 0; i < 10; i++ {
		data := bytes.Repeat([]byte{byte(i)}, 256)
		wid, err := th.AsyncWrite(0, data, uint64(i)*256)
		if err != nil {
			t.Fatal(err)
		}
		rid, err := th.AsyncRead(0, uint64(i)*256, dest)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Add(wid); err != nil {
			t.Fatal(err)
		}
		if err := g.Add(rid); err != nil {
			t.Fatal(err)
		}
		waitIDs(t, g, 2, 10*time.Second)
	}
	st := s.P4.Stats()
	if st.ReadsCompleted != 10 || st.WritesCompleted != 10 {
		t.Fatalf("completions: %+v", st)
	}
	if st.ProbesSent == 0 || st.EntriesFetched != 20 {
		t.Fatalf("probe/fetch stats: %+v", st)
	}
	// Every data transfer is a recycled packet: metadata fetches, the
	// read/write conversions, and the bookkeeping updates.
	if st.PacketsRecycled < st.EntriesFetched+st.RedWrites {
		t.Fatalf("too few recycled packets: %+v", st)
	}
}

// TestP4LossRecovery injects heavy loss on the fabric and verifies the
// switch's data-plane timeout + Go-Back-N recovery completes everything
// with correct data.
func TestP4LossRecovery(t *testing.T) {
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(7))
	dropping := false
	dropped := 0
	s := startSystem(t, func(c *Config) {
		c.Engine = EngineP4
		// Generous relative to the fabric's RTT even under -race slowdown:
		// a timeout shorter than a healthy round trip causes spurious
		// recoveries that look like livelock.
		c.P4.Timeout = 40 * time.Millisecond
	})
	s.Fabric.SetLossFn(func(frame []byte) bool {
		mu.Lock()
		defer mu.Unlock()
		if dropping && rng.Intn(100) < 15 {
			dropped++
			return true
		}
		return false
	})
	mu.Lock()
	dropping = true
	mu.Unlock()

	th, _ := s.Client.Thread(0)
	g := th.PollCreate()
	const ops = 20
	bufs := make([][]byte, ops)
	for i := 0; i < ops; i++ {
		data := bytes.Repeat([]byte{byte(i + 1)}, 700)
		off := uint64(i) * 1024
		wid, err := th.AsyncWrite(0, data, off)
		if err != nil {
			t.Fatal(err)
		}
		bufs[i] = make([]byte, 700)
		rid, err := th.AsyncRead(0, off, bufs[i])
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Add(wid); err != nil {
			t.Fatal(err)
		}
		if err := g.Add(rid); err != nil {
			t.Fatal(err)
		}
	}
	waitIDs(t, g, 2*ops, 180*time.Second)
	mu.Lock()
	d := dropped
	mu.Unlock()
	if d == 0 {
		t.Fatal("loss injector never fired; test is vacuous")
	}
	for i, b := range bufs {
		for j, v := range b {
			if v != byte(i+1) {
				t.Fatalf("read %d byte %d corrupted under loss (%d)", i, j, v)
			}
		}
	}
	if s.P4.Stats().Recoveries == 0 && s.P4.Stats().NAKs == 0 {
		t.Fatal("no recovery was exercised despite drops")
	}
}

// TestSpotLossRecovery: the spot engine rides on host-NIC Go-Back-N.
func TestSpotLossRecovery(t *testing.T) {
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(9))
	dropping := false
	s := startSystem(t, func(c *Config) {
		c.Engine = EngineSpot
		c.NIC.RetransmitTimeout = time.Millisecond
	})
	s.Fabric.SetLossFn(func(frame []byte) bool {
		mu.Lock()
		defer mu.Unlock()
		return dropping && rng.Intn(100) < 10
	})
	mu.Lock()
	dropping = true
	mu.Unlock()

	th, _ := s.Client.Thread(0)
	g := th.PollCreate()
	const ops = 30
	bufs := make([][]byte, ops)
	for i := 0; i < ops; i++ {
		data := bytes.Repeat([]byte{byte(i + 1)}, 700)
		off := uint64(i) * 1024
		wid, err := th.AsyncWrite(0, data, off)
		if err != nil {
			t.Fatal(err)
		}
		bufs[i] = make([]byte, 700)
		rid, err := th.AsyncRead(0, off, bufs[i])
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Add(wid); err != nil {
			t.Fatal(err)
		}
		if err := g.Add(rid); err != nil {
			t.Fatal(err)
		}
	}
	waitIDs(t, g, 2*ops, 60*time.Second)
	for i, b := range bufs {
		if b[0] != byte(i+1) || b[699] != byte(i+1) {
			t.Fatalf("read %d corrupted under loss", i)
		}
	}
}

// TestP4PausesReadsDuringWrites verifies the §5.3 conservative rule is
// actually exercised: a write burst followed by reads should hold some
// reads.
func TestP4PausesReadsDuringWrites(t *testing.T) {
	s := startSystem(t, func(c *Config) {
		c.Engine = EngineP4
		// Slow probes so writes and reads land in the same metadata fetch.
		c.P4.ProbeInterval = 2 * time.Millisecond
	})
	th, _ := s.Client.Thread(0)
	g := th.PollCreate()
	const rounds = 10
	for i := 0; i < rounds; i++ {
		data := bytes.Repeat([]byte{byte(i)}, 512)
		wid, err := th.AsyncWrite(0, data, uint64(i)*512)
		if err != nil {
			t.Fatal(err)
		}
		dest := make([]byte, 512)
		rid, err := th.AsyncRead(0, uint64(i)*512, dest)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Add(wid); err != nil {
			t.Fatal(err)
		}
		if err := g.Add(rid); err != nil {
			t.Fatal(err)
		}
		waitIDs(t, g, 2, 10*time.Second)
		if dest[0] != byte(i) {
			t.Fatalf("round %d: stale read", i)
		}
	}
	if s.P4.Stats().ReadsPaused == 0 {
		t.Fatal("pause-all-reads rule never fired for write+read batches")
	}
}

// TestMultiThreadIsolation: two threads on one compute node use disjoint
// queue sets served by the same engine.
func TestSpotMultiQueueTDM(t *testing.T) {
	s := startSystem(t, func(c *Config) {
		c.Engine = EngineSpot
		c.Threads = 4
	})
	var wg sync.WaitGroup
	for ti := 0; ti < 4; ti++ {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			th, _ := s.Client.Thread(ti)
			g := th.PollCreate()
			data := bytes.Repeat([]byte{byte(0x10 + ti)}, 256)
			id, err := th.AsyncWrite(0, data, uint64(ti)*4096)
			if err != nil {
				t.Error(err)
				return
			}
			if err := g.Add(id); err != nil {
				t.Error(err)
				return
			}
			got := g.Wait(1, 10*time.Second)
			if len(got) != 1 {
				t.Errorf("thread %d: write never completed", ti)
			}
		}(ti)
	}
	wg.Wait()
	for ti := 0; ti < 4; ti++ {
		got, err := s.Pool.Peek(0, uint64(ti)*4096, 256)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(0x10+ti) {
			t.Fatalf("thread %d data not isolated", ti)
		}
	}
}
