// Package system assembles complete Cowbird deployments: a compute node
// (client library + RNIC), a memory pool, an offload engine (Cowbird-Spot
// or Cowbird-P4), and the fabric connecting them. It performs the §5.2
// Phase I (Setup) wiring — QP creation, PSN exchange, region registration,
// and control-plane hand-off to the engine — that a real deployment would
// do through RDMA CM and the switch's control-plane RPC endpoint.
package system

import (
	"fmt"
	"time"

	"cowbird/internal/cache"
	"cowbird/internal/core"
	"cowbird/internal/engine/p4"
	"cowbird/internal/engine/spot"
	"cowbird/internal/memnode"
	"cowbird/internal/rdma"
	"cowbird/internal/rings"
	"cowbird/internal/telemetry"
	"cowbird/internal/wire"
)

// EngineKind selects the offload engine variant.
type EngineKind int

// Engine variants.
const (
	EngineSpot EngineKind = iota
	EngineP4
)

// Config describes a deployment.
type Config struct {
	Engine     EngineKind
	Threads    int          // compute-side hardware threads (queue sets)
	Layout     rings.Layout // per-thread queue geometry
	RegionSize int          // bytes of remote memory in region 0
	NIC        rdma.Config  // link-level parameters for every NIC
	Spot       spot.Config  // engine tuning (EngineSpot)
	P4         p4.Config    // engine tuning (EngineP4)

	// PoolReplicas is the number of memory pool nodes backing region 0.
	// 0 or 1 means a single pool (the original deployment). With more, the
	// Spot engine mirrors every write to all replicas and transparently
	// fails reads over when the primary dies; the client's WaitErr then
	// surfaces core.ErrPoolDegraded as an advisory. Replication is a Spot
	// capability: the P4 switch pipeline has no staging memory to fan out
	// writes (§7), so EngineP4 with PoolReplicas > 1 is a config error.
	PoolReplicas int

	// PoolRetransmitTimeout and PoolMaxRetries tighten Go-Back-N on the
	// engine→pool QPs alone (rdma.QP.SetRetryPolicy), bounding replica-death
	// detection at roughly their product without touching the engine↔compute
	// path — whose responder shares DMA mutexes with the polling client and
	// must tolerate scheduling stalls that would exhaust an aggressive retry
	// budget. Zero values keep the NIC-wide Config.NIC knobs everywhere.
	PoolRetransmitTimeout time.Duration
	PoolMaxRetries        int

	// DisableFencing turns off split-brain write fencing (DESIGN.md §14).
	// By default a Spot deployment binds at fencing epoch 1: every pool
	// replica and the client's queue-set memory refuse RDMA WRITEs carrying
	// an older epoch, and a promoted standby bumps the epoch everywhere
	// before serving, so a partitioned-but-alive old engine demotes itself
	// on its first post-partition write instead of corrupting state. The
	// epoch rides the otherwise-unused BTH.PKey field, so the wire format
	// and P4 deployments (which recycle packets with PKey 0 and are
	// therefore always unfenced) are unchanged.
	DisableFencing bool

	// LegacyDatapath reverts the substrate to its pre-sharding behavior:
	// one datapath lock per NIC and every frame serialized through the
	// fabric's forwarding goroutine. Kept as the measured baseline for the
	// fabric-scaling benchmarks (internal/bench); no production reason to
	// enable it.
	LegacyDatapath bool

	// Cache configures the client-side hot-data tier (internal/cache): a
	// write-through read cache with an optional stride prefetcher, layered
	// over the per-thread rings. Zero value (Enabled == false) keeps the
	// client untouched; enabling it changes performance only — every write
	// still goes to the fabric, and reads return the same bytes they would
	// without it (DESIGN.md §11).
	Cache cache.Config

	// Telemetry, when non-nil, is installed in the client and the engine:
	// exact issue/harvest counters, 1-in-N stage timings, and end-to-end
	// request latency histograms all land in this one hub. Nil (the
	// default) keeps every datapath identical to the uninstrumented build.
	Telemetry *telemetry.Telemetry
}

// DefaultConfig returns a small single-thread deployment with a Spot engine.
func DefaultConfig() Config {
	return Config{
		Engine:     EngineSpot,
		Threads:    1,
		Layout:     rings.Layout{MetaEntries: 256, ReqDataBytes: 256 << 10, RespDataBytes: 256 << 10},
		RegionSize: 4 << 20,
		NIC:        rdma.DefaultConfig(),
		Spot:       spot.DefaultConfig(),
		P4:         p4.DefaultConfig(),
	}
}

// System is a running deployment.
type System struct {
	Fabric  *rdma.Fabric
	Compute *rdma.NIC
	Client  *core.Client
	Pool    *memnode.Node   // the primary pool; == Pools[0]
	Pools   []*memnode.Node // all pool replicas, priority order
	Region  core.RegionInfo

	Spot *spot.Engine // non-nil iff Engine == EngineSpot
	P4   *p4.Engine   // non-nil iff Engine == EngineP4

	engineNIC *rdma.NIC
}

// Addresses used by the standard three-node deployment.
var (
	computeMAC = wire.MAC{0x02, 0xC0, 0, 0, 0, 0x01}
	engineMAC  = wire.MAC{0x02, 0xC0, 0, 0, 0, 0x03}
	computeIP  = wire.IPv4Addr{10, 0, 0, 1}
	engineIP   = wire.IPv4Addr{10, 0, 0, 3}
)

// PoolMAC and PoolIP address pool replica r; replica 0 keeps the addresses
// of the original single-pool deployment. Exported so fault-injection tools
// (internal/chaos, examples) can target a specific replica's links.
func PoolMAC(r int) wire.MAC     { return wire.MAC{0x02, 0xC0, 0, 0, byte(r), 0x02} }
func PoolIP(r int) wire.IPv4Addr { return wire.IPv4Addr{10, 0, byte(r), 2} }

// ComputeMAC and EngineMAC are the compute node's and engine's fabric
// addresses, exported for the same fault-injection use (asymmetric
// partitions and zombie-primary schedules target the engine↔compute pair).
func ComputeMAC() wire.MAC { return computeMAC }
func EngineMAC() wire.MAC  { return engineMAC }

// New builds and starts a deployment.
func New(cfg Config) (*System, error) {
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	if cfg.LegacyDatapath {
		cfg.NIC.CoarseLocking = true
	}
	if cfg.PoolReplicas <= 0 {
		cfg.PoolReplicas = 1
	}
	if cfg.Engine == EngineP4 && cfg.PoolReplicas > 1 {
		return nil, fmt.Errorf("system: EngineP4 does not support PoolReplicas > 1 (the switch pipeline cannot mirror writes); use EngineSpot")
	}
	s := &System{Fabric: rdma.NewFabric()}
	if cfg.LegacyDatapath {
		s.Fabric.SetSerialForwarding(true)
	}
	s.Compute = rdma.NewNIC(s.Fabric, computeMAC, computeIP, cfg.NIC)
	for r := 0; r < cfg.PoolReplicas; r++ {
		s.Pools = append(s.Pools, memnode.New(s.Fabric, PoolMAC(r), PoolIP(r), cfg.NIC))
	}
	s.Pool = s.Pools[0]

	var err error
	s.Client, err = core.NewClient(s.Compute, core.ClientConfig{
		Threads:   cfg.Threads,
		Layout:    cfg.Layout,
		BaseVA:    0x10_0000,
		Telemetry: cfg.Telemetry,
		Cache:     cfg.Cache,
	})
	if err != nil {
		s.Close()
		return nil, err
	}
	if cfg.Telemetry != nil && s.Client.Cache() != nil {
		s.Client.Cache().RegisterMetrics(cfg.Telemetry.Reg)
	}
	for _, pool := range s.Pools {
		region, aerr := pool.AllocRegion(0, cfg.RegionSize)
		if aerr != nil {
			s.Close()
			return nil, aerr
		}
		if pool == s.Pool {
			s.Region = region
		}
	}
	s.Client.RegisterRegion(s.Region)
	inst := s.Client.Describe(0)

	switch cfg.Engine {
	case EngineSpot:
		s.engineNIC = rdma.NewNIC(s.Fabric, engineMAC, engineIP, cfg.NIC)
		if cfg.Telemetry != nil {
			cfg.Spot.Telemetry = cfg.Telemetry
		}
		eng := spot.New(s.engineNIC, cfg.Spot)
		if err := WireSpotInstanceReplicated(eng, inst, s.Compute, s.Pools, cfg.PoolRetransmitTimeout, cfg.PoolMaxRetries); err != nil {
			s.Close()
			return nil, err
		}
		if !cfg.DisableFencing {
			// Bind at epoch 1: pools and client floors rise together with the
			// engine's stamp, and a fencing NAK anywhere surfaces through the
			// client's WaitErr as core.ErrFenced.
			for _, pool := range s.Pools {
				if ferr := pool.Fence(1); ferr != nil {
					s.Close()
					return nil, ferr
				}
			}
			if ferr := s.Client.Fence(1); ferr != nil {
				s.Close()
				return nil, ferr
			}
			eng.SetFenceEpoch(1)
			s.Client.SetFenceSignal(eng.Fenced)
		}
		eng.Run()
		s.Spot = eng
		if cfg.Telemetry != nil {
			eng.RegisterMetrics(cfg.Telemetry.Reg)
		}
		// Surface lost-replica advisories through the client's WaitErr.
		s.Client.SetPoolHealth(eng.PoolDegraded)
	case EngineP4:
		if cfg.Telemetry != nil {
			cfg.P4.Telemetry = cfg.Telemetry
		}
		eng := p4.New(s.Fabric, engineMAC, engineIP, cfg.P4)
		s.Fabric.SetInterposer(eng)
		if err := WireP4Instance(eng, inst, s.Compute, s.Pool.NIC()); err != nil {
			s.Close()
			return nil, err
		}
		eng.Run()
		s.P4 = eng
		if cfg.Telemetry != nil {
			eng.RegisterMetrics(cfg.Telemetry.Reg)
		}
	default:
		s.Close()
		return nil, fmt.Errorf("system: unknown engine kind %d", cfg.Engine)
	}
	return s, nil
}

// WireSpotInstance performs the Setup handshake between a Spot engine and a
// compute/pool pair: it creates the engine-side QPs, the passive QPs on the
// compute and pool NICs, exchanges PSNs, and registers the instance.
func WireSpotInstance(eng *spot.Engine, inst *core.Instance, compute, pool *rdma.NIC) error {
	unusedCQ := rdma.NewCQ()

	// Engine <-> compute node.
	eCompQP := eng.NIC().CreateQP(eng.CQ(), unusedCQ, 1000)
	cQP := compute.CreateQP(rdma.NewCQ(), rdma.NewCQ(), 2000)
	eCompQP.Connect(rdma.RemoteEndpoint{QPN: cQP.QPN(), MAC: compute.MAC(), IP: compute.IP()}, 2000)
	cQP.Connect(rdma.RemoteEndpoint{QPN: eCompQP.QPN(), MAC: eng.NIC().MAC(), IP: eng.NIC().IP()}, 1000)

	// Engine <-> memory pool.
	eMemQP := eng.NIC().CreateQP(eng.CQ(), unusedCQ, 3000)
	mQP := pool.CreateQP(rdma.NewCQ(), rdma.NewCQ(), 4000)
	eMemQP.Connect(rdma.RemoteEndpoint{QPN: mQP.QPN(), MAC: pool.MAC(), IP: pool.IP()}, 4000)
	mQP.Connect(rdma.RemoteEndpoint{QPN: eMemQP.QPN(), MAC: eng.NIC().MAC(), IP: eng.NIC().IP()}, 3000)

	eng.AddInstance(inst, eCompQP, eMemQP)
	return nil
}

// WireSpotInstanceReplicated is WireSpotInstance for an instance backed by
// one or more pool replicas (priority order; pools[0] is the primary). Each
// replica gets its own engine-side QP, and its own region descriptors are
// handed to the engine for per-replica address translation. poolRTO and
// poolMaxRetries, when nonzero, install a per-QP Go-Back-N override on the
// engine→pool QPs (see Config.PoolRetransmitTimeout).
//
// Beyond the instance-wide control-path QPs, every queue set also gets its
// own dedicated datapath QPs — one to the compute node and one per pool
// replica, all completing into a private send CQ — so the engine's sharded
// datapath runs each queue worker to completion on its own goroutine
// (spot.AddInstanceWired): no shared hardware CQ, no demultiplexer hop, no
// per-QP lock shared between shards. A serial-mode engine accepts the same
// wiring and simply serves through the shared QPs.
func WireSpotInstanceReplicated(eng *spot.Engine, inst *core.Instance, compute *rdma.NIC, pools []*memnode.Node, poolRTO time.Duration, poolMaxRetries int) error {
	if len(pools) == 0 {
		return fmt.Errorf("system: no pool replicas to wire")
	}
	unusedCQ := rdma.NewCQ()

	// connect performs one PSN exchange between an engine-side QP (created
	// on sendCQ) and a fresh passive QP on the peer NIC.
	connect := func(sendCQ *rdma.CQ, peer *rdma.NIC, ePSN, pPSN uint32) *rdma.QP {
		eQP := eng.NIC().CreateQP(sendCQ, unusedCQ, ePSN)
		pQP := peer.CreateQP(rdma.NewCQ(), rdma.NewCQ(), pPSN)
		eQP.Connect(rdma.RemoteEndpoint{QPN: pQP.QPN(), MAC: peer.MAC(), IP: peer.IP()}, pPSN)
		pQP.Connect(rdma.RemoteEndpoint{QPN: eQP.QPN(), MAC: eng.NIC().MAC(), IP: eng.NIC().IP()}, ePSN)
		return eQP
	}

	// Instance-wide control-path QPs: adoption reads, serial mode, fallback.
	eCompQP := connect(eng.CQ(), compute, 1000, 2000)
	var reps []spot.PoolReplica
	for r, pool := range pools {
		eMemQP := connect(eng.CQ(), pool.NIC(), uint32(3000+r*200), uint32(4000+r*200))
		eMemQP.SetRetryPolicy(poolRTO, poolMaxRetries)
		reps = append(reps, spot.PoolReplica{QP: eMemQP, Regions: pool.Regions()})
	}

	// Per-queue dedicated datapath QPs (run-to-completion wiring).
	var queues []spot.QueueEndpoints
	for q := range inst.Queues {
		base := uint32(1_000_000 + q*10_000)
		sendCQ := rdma.NewCQ()
		ep := spot.QueueEndpoints{
			SendCQ:    sendCQ,
			ComputeQP: connect(sendCQ, compute, base, base+1),
		}
		for r, pool := range pools {
			pQP := connect(sendCQ, pool.NIC(), base+uint32(100+2*r), base+uint32(101+2*r))
			pQP.SetRetryPolicy(poolRTO, poolMaxRetries)
			ep.Pools = append(ep.Pools, pQP)
		}
		queues = append(queues, ep)
	}
	return eng.AddInstanceWired(inst, eCompQP, reps, queues)
}

// WireP4Instance performs Phase I for a Cowbird-P4 instance: it creates
// host-side QPs on the compute and pool NICs, registers the instance with
// the switch control plane, and connects the host QPs to the switch's
// emulated endpoints.
func WireP4Instance(eng *p4.Engine, inst *core.Instance, compute, pool *rdma.NIC) error {
	cQP := compute.CreateQP(rdma.NewCQ(), rdma.NewCQ(), 2000)
	mQP := pool.CreateQP(rdma.NewCQ(), rdma.NewCQ(), 4000)
	sw, err := eng.Setup(inst, p4.Endpoints{
		Compute: p4.Endpoint{
			MAC: compute.MAC(), IP: compute.IP(), QPN: cQP.QPN(), FirstPSN: 2000,
			ResetEPSN: cQP.ResetExpectedPSN,
		},
		Pool: p4.Endpoint{
			MAC: pool.MAC(), IP: pool.IP(), QPN: mQP.QPN(), FirstPSN: 4000,
			ResetEPSN: mQP.ResetExpectedPSN,
		},
	})
	if err != nil {
		return err
	}
	cQP.Connect(rdma.RemoteEndpoint{QPN: sw.ComputeQPN, MAC: eng.MAC(), IP: eng.IP()}, sw.FirstPSN)
	mQP.Connect(rdma.RemoteEndpoint{QPN: sw.PoolQPN, MAC: eng.MAC(), IP: eng.IP()}, sw.FirstPSN)
	return nil
}

// Close shuts everything down.
func (s *System) Close() {
	if s.Spot != nil {
		s.Spot.Stop()
	}
	if s.P4 != nil {
		s.P4.Stop()
	}
	if s.engineNIC != nil {
		s.engineNIC.Close()
	}
	if s.Compute != nil {
		s.Compute.Close()
	}
	for _, p := range s.Pools {
		p.Close()
	}
	if s.Fabric != nil {
		s.Fabric.Close()
	}
}
