// Package system assembles complete Cowbird deployments: a compute node
// (client library + RNIC), a memory pool, an offload engine (Cowbird-Spot
// or Cowbird-P4), and the fabric connecting them. It performs the §5.2
// Phase I (Setup) wiring — QP creation, PSN exchange, region registration,
// and control-plane hand-off to the engine — that a real deployment would
// do through RDMA CM and the switch's control-plane RPC endpoint.
package system

import (
	"fmt"

	"cowbird/internal/core"
	"cowbird/internal/engine/p4"
	"cowbird/internal/engine/spot"
	"cowbird/internal/memnode"
	"cowbird/internal/rdma"
	"cowbird/internal/rings"
	"cowbird/internal/wire"
)

// EngineKind selects the offload engine variant.
type EngineKind int

// Engine variants.
const (
	EngineSpot EngineKind = iota
	EngineP4
)

// Config describes a deployment.
type Config struct {
	Engine     EngineKind
	Threads    int          // compute-side hardware threads (queue sets)
	Layout     rings.Layout // per-thread queue geometry
	RegionSize int          // bytes of remote memory in region 0
	NIC        rdma.Config  // link-level parameters for every NIC
	Spot       spot.Config  // engine tuning (EngineSpot)
	P4         p4.Config    // engine tuning (EngineP4)

	// LegacyDatapath reverts the substrate to its pre-sharding behavior:
	// one datapath lock per NIC and every frame serialized through the
	// fabric's forwarding goroutine. Kept as the measured baseline for the
	// fabric-scaling benchmarks (internal/bench); no production reason to
	// enable it.
	LegacyDatapath bool
}

// DefaultConfig returns a small single-thread deployment with a Spot engine.
func DefaultConfig() Config {
	return Config{
		Engine:     EngineSpot,
		Threads:    1,
		Layout:     rings.Layout{MetaEntries: 256, ReqDataBytes: 256 << 10, RespDataBytes: 256 << 10},
		RegionSize: 4 << 20,
		NIC:        rdma.DefaultConfig(),
		Spot:       spot.DefaultConfig(),
		P4:         p4.DefaultConfig(),
	}
}

// System is a running deployment.
type System struct {
	Fabric  *rdma.Fabric
	Compute *rdma.NIC
	Client  *core.Client
	Pool    *memnode.Node
	Region  core.RegionInfo

	Spot *spot.Engine // non-nil iff Engine == EngineSpot
	P4   *p4.Engine   // non-nil iff Engine == EngineP4

	engineNIC *rdma.NIC
}

// Addresses used by the standard three-node deployment.
var (
	computeMAC = wire.MAC{0x02, 0xC0, 0, 0, 0, 0x01}
	poolMAC    = wire.MAC{0x02, 0xC0, 0, 0, 0, 0x02}
	engineMAC  = wire.MAC{0x02, 0xC0, 0, 0, 0, 0x03}
	computeIP  = wire.IPv4Addr{10, 0, 0, 1}
	poolIP     = wire.IPv4Addr{10, 0, 0, 2}
	engineIP   = wire.IPv4Addr{10, 0, 0, 3}
)

// New builds and starts a deployment.
func New(cfg Config) (*System, error) {
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	if cfg.LegacyDatapath {
		cfg.NIC.CoarseLocking = true
	}
	s := &System{Fabric: rdma.NewFabric()}
	if cfg.LegacyDatapath {
		s.Fabric.SetSerialForwarding(true)
	}
	s.Compute = rdma.NewNIC(s.Fabric, computeMAC, computeIP, cfg.NIC)
	s.Pool = memnode.New(s.Fabric, poolMAC, poolIP, cfg.NIC)

	var err error
	s.Client, err = core.NewClient(s.Compute, core.ClientConfig{
		Threads: cfg.Threads,
		Layout:  cfg.Layout,
		BaseVA:  0x10_0000,
	})
	if err != nil {
		s.Close()
		return nil, err
	}
	s.Region, err = s.Pool.AllocRegion(0, cfg.RegionSize)
	if err != nil {
		s.Close()
		return nil, err
	}
	s.Client.RegisterRegion(s.Region)
	inst := s.Client.Describe(0)

	switch cfg.Engine {
	case EngineSpot:
		s.engineNIC = rdma.NewNIC(s.Fabric, engineMAC, engineIP, cfg.NIC)
		eng := spot.New(s.engineNIC, cfg.Spot)
		if err := WireSpotInstance(eng, inst, s.Compute, s.Pool.NIC()); err != nil {
			s.Close()
			return nil, err
		}
		eng.Run()
		s.Spot = eng
	case EngineP4:
		eng := p4.New(s.Fabric, engineMAC, engineIP, cfg.P4)
		s.Fabric.SetInterposer(eng)
		if err := WireP4Instance(eng, inst, s.Compute, s.Pool.NIC()); err != nil {
			s.Close()
			return nil, err
		}
		eng.Run()
		s.P4 = eng
	default:
		s.Close()
		return nil, fmt.Errorf("system: unknown engine kind %d", cfg.Engine)
	}
	return s, nil
}

// WireSpotInstance performs the Setup handshake between a Spot engine and a
// compute/pool pair: it creates the engine-side QPs, the passive QPs on the
// compute and pool NICs, exchanges PSNs, and registers the instance.
func WireSpotInstance(eng *spot.Engine, inst *core.Instance, compute, pool *rdma.NIC) error {
	unusedCQ := rdma.NewCQ()

	// Engine <-> compute node.
	eCompQP := eng.NIC().CreateQP(eng.CQ(), unusedCQ, 1000)
	cQP := compute.CreateQP(rdma.NewCQ(), rdma.NewCQ(), 2000)
	eCompQP.Connect(rdma.RemoteEndpoint{QPN: cQP.QPN(), MAC: compute.MAC(), IP: compute.IP()}, 2000)
	cQP.Connect(rdma.RemoteEndpoint{QPN: eCompQP.QPN(), MAC: eng.NIC().MAC(), IP: eng.NIC().IP()}, 1000)

	// Engine <-> memory pool.
	eMemQP := eng.NIC().CreateQP(eng.CQ(), unusedCQ, 3000)
	mQP := pool.CreateQP(rdma.NewCQ(), rdma.NewCQ(), 4000)
	eMemQP.Connect(rdma.RemoteEndpoint{QPN: mQP.QPN(), MAC: pool.MAC(), IP: pool.IP()}, 4000)
	mQP.Connect(rdma.RemoteEndpoint{QPN: eMemQP.QPN(), MAC: eng.NIC().MAC(), IP: eng.NIC().IP()}, 3000)

	eng.AddInstance(inst, eCompQP, eMemQP)
	return nil
}

// WireP4Instance performs Phase I for a Cowbird-P4 instance: it creates
// host-side QPs on the compute and pool NICs, registers the instance with
// the switch control plane, and connects the host QPs to the switch's
// emulated endpoints.
func WireP4Instance(eng *p4.Engine, inst *core.Instance, compute, pool *rdma.NIC) error {
	cQP := compute.CreateQP(rdma.NewCQ(), rdma.NewCQ(), 2000)
	mQP := pool.CreateQP(rdma.NewCQ(), rdma.NewCQ(), 4000)
	sw, err := eng.Setup(inst, p4.Endpoints{
		Compute: p4.Endpoint{
			MAC: compute.MAC(), IP: compute.IP(), QPN: cQP.QPN(), FirstPSN: 2000,
			ResetEPSN: cQP.ResetExpectedPSN,
		},
		Pool: p4.Endpoint{
			MAC: pool.MAC(), IP: pool.IP(), QPN: mQP.QPN(), FirstPSN: 4000,
			ResetEPSN: mQP.ResetExpectedPSN,
		},
	})
	if err != nil {
		return err
	}
	cQP.Connect(rdma.RemoteEndpoint{QPN: sw.ComputeQPN, MAC: eng.MAC(), IP: eng.IP()}, sw.FirstPSN)
	mQP.Connect(rdma.RemoteEndpoint{QPN: sw.PoolQPN, MAC: eng.MAC(), IP: eng.IP()}, sw.FirstPSN)
	return nil
}

// Close shuts everything down.
func (s *System) Close() {
	if s.Spot != nil {
		s.Spot.Stop()
	}
	if s.P4 != nil {
		s.P4.Stop()
	}
	if s.engineNIC != nil {
		s.engineNIC.Close()
	}
	if s.Compute != nil {
		s.Compute.Close()
	}
	if s.Pool != nil {
		s.Pool.Close()
	}
	if s.Fabric != nil {
		s.Fabric.Close()
	}
}
