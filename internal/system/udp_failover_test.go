package system

import (
	"context"
	"net"
	"testing"
	"time"

	"cowbird/internal/core"
	"cowbird/internal/ctl"
	"cowbird/internal/engine/spot"
	"cowbird/internal/ha"
	"cowbird/internal/memnode"
	"cowbird/internal/rdma"
	"cowbird/internal/rings"
)

// startCtl serves a control-plane handler on a loopback listener, the way
// each cowbird-* command does, and returns its dial address.
func startCtl(t *testing.T, h ctl.Handler) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go ctl.Serve(l, h)
	return l.Addr().String()
}

// TestUDPFailoverDeployment is the cmd-level failover story end to end,
// in-process: four "processes" — memnode, primary engine, standby engine
// (cowbird-engine -standby), and the app — each with its own fabric,
// exchanging RoCEv2 frames over real UDP loopback sockets and orchestrating
// Phase I over the JSON/TCP control plane with ctl.CallRetry. The primary
// is preempted mid-workload; the compute node's lease monitor detects the
// death and sends "promote" to the standby's control port, which adopts the
// durable bookkeeping state and completes the run.
func TestUDPFailoverDeployment(t *testing.T) {
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	call := func(addr string, req ctl.Request) ctl.Response {
		t.Helper()
		resp, err := ctl.CallRetry(ctx, addr, req)
		must(err)
		return resp
	}

	// Memory-pool process (cmd/cowbird-memnode).
	poolFab := rdma.NewFabric()
	t.Cleanup(poolFab.Close)
	poolBr, err := rdma.NewUDPBridge(poolFab, "127.0.0.1:0")
	must(err)
	t.Cleanup(poolBr.Close)
	pool := memnode.New(poolFab, ctl.PoolMAC, ctl.PoolIP, rdma.DefaultConfig())
	t.Cleanup(pool.Close)
	poolQPs := make(map[uint32]*rdma.QP)
	poolCtl := startCtl(t, func(req ctl.Request) ctl.Response {
		switch req.Op {
		case "add_peer_addr":
			if err := poolBr.AddPeer(req.Remote.MAC, req.PeerAddr); err != nil {
				return ctl.Response{Err: err.Error()}
			}
			return ctl.Response{}
		case "alloc_region":
			info, err := pool.AllocRegion(req.RegionID, int(req.Size))
			if err != nil {
				return ctl.Response{Err: err.Error()}
			}
			return ctl.Response{Region: &info}
		case "create_qp":
			qp := pool.NIC().CreateQP(rdma.NewCQ(), rdma.NewCQ(), req.FirstPSN)
			poolQPs[qp.QPN()] = qp
			return ctl.Response{QPN: qp.QPN()}
		case "connect_qp":
			qp, ok := poolQPs[req.QPN]
			if !ok {
				return ctl.Response{Err: "unknown QPN"}
			}
			qp.Connect(rdma.RemoteEndpoint{
				QPN: req.Remote.QPN, MAC: req.Remote.MAC, IP: req.Remote.IP,
			}, req.Remote.FirstPSN)
			return ctl.Response{}
		}
		return ctl.Response{Err: "unknown op " + req.Op}
	})

	// Engine processes (cmd/cowbird-engine, one active and one -standby),
	// both built around the same ha.EngineControl the command uses.
	ecfg := spot.DefaultConfig()
	ecfg.ProbeInterval = 5 * time.Microsecond
	ecfg.HeartbeatInterval = time.Millisecond
	newEngine := func(mac [6]byte, ip [4]byte, standby bool) (*spot.Engine, *ha.EngineControl, *rdma.UDPBridge, string) {
		fab := rdma.NewFabric()
		t.Cleanup(fab.Close)
		br, err := rdma.NewUDPBridge(fab, "127.0.0.1:0")
		must(err)
		t.Cleanup(br.Close)
		nic := rdma.NewNIC(fab, mac, ip, rdma.DefaultConfig())
		t.Cleanup(nic.Close)
		eng := spot.New(nic, ecfg)
		t.Cleanup(eng.Stop)
		ec := ha.NewEngineControl(eng, br, nic, mac, ip, standby)
		return eng, ec, br, startCtl(t, ec.Handle)
	}
	primary, _, primBr, primaryCtl := newEngine(ctl.EngineMAC, ctl.EngineIP, false)
	primary.Run()
	_, standbyEC, sbBr, standbyCtl := newEngine(ctl.StandbyMAC, ctl.StandbyIP, true)

	// App process (cmd/cowbird-app).
	compFab := rdma.NewFabric()
	t.Cleanup(compFab.Close)
	compBr, err := rdma.NewUDPBridge(compFab, "127.0.0.1:0")
	must(err)
	t.Cleanup(compBr.Close)
	compNIC := rdma.NewNIC(compFab, ctl.ComputeMAC, ctl.ComputeIP, rdma.DefaultConfig())
	t.Cleanup(compNIC.Close)
	client, err := core.NewClient(compNIC, core.ClientConfig{
		Threads: 1,
		Layout:  rings.Layout{MetaEntries: 64, ReqDataBytes: 32 << 10, RespDataBytes: 32 << 10},
		BaseVA:  0x10_0000,
	})
	must(err)

	// Teach every bridge where its peers' data planes live (the
	// add_peer_addr calls cowbird-app makes, now covering four roles: the
	// compute node and pool must each know both engines' addresses, so
	// frames route to primary and standby independently).
	must(compBr.AddPeer(ctl.PoolMAC, poolBr.LocalAddr()))
	must(compBr.AddPeer(ctl.EngineMAC, primBr.LocalAddr()))
	must(compBr.AddPeer(ctl.StandbyMAC, sbBr.LocalAddr()))
	for _, ctlAddr := range []string{primaryCtl, standbyCtl} {
		call(ctlAddr, ctl.Request{Op: "add_peer_addr", Remote: &ctl.QPEndpoint{MAC: ctl.ComputeMAC}, PeerAddr: compBr.LocalAddr()})
		call(ctlAddr, ctl.Request{Op: "add_peer_addr", Remote: &ctl.QPEndpoint{MAC: ctl.PoolMAC}, PeerAddr: poolBr.LocalAddr()})
	}
	call(poolCtl, ctl.Request{Op: "add_peer_addr", Remote: &ctl.QPEndpoint{MAC: ctl.ComputeMAC}, PeerAddr: compBr.LocalAddr()})
	call(poolCtl, ctl.Request{Op: "add_peer_addr", Remote: &ctl.QPEndpoint{MAC: ctl.EngineMAC}, PeerAddr: primBr.LocalAddr()})
	call(poolCtl, ctl.Request{Op: "add_peer_addr", Remote: &ctl.QPEndpoint{MAC: ctl.StandbyMAC}, PeerAddr: sbBr.LocalAddr()})

	// Phase I Setup against both engines, orchestrated like cowbird-app.
	resp := call(poolCtl, ctl.Request{Op: "alloc_region", RegionID: 0, Size: 1 << 20})
	client.RegisterRegion(*resp.Region)

	setupAgainst := func(ctlAddr string, compPSN, memPSN uint32) {
		mResp := call(poolCtl, ctl.Request{Op: "create_qp", FirstPSN: memPSN})
		cQP := compNIC.CreateQP(rdma.NewCQ(), rdma.NewCQ(), compPSN)
		sResp := call(ctlAddr, ctl.Request{
			Op:       "setup",
			Instance: client.Describe(1),
			Compute:  &ctl.QPEndpoint{QPN: cQP.QPN(), MAC: ctl.ComputeMAC, IP: ctl.ComputeIP, FirstPSN: compPSN},
			Pool:     &ctl.QPEndpoint{QPN: mResp.QPN, MAC: ctl.PoolMAC, IP: ctl.PoolIP, FirstPSN: memPSN},
		})
		cQP.Connect(rdma.RemoteEndpoint{
			QPN: sResp.EngineToCompute.QPN, MAC: sResp.EngineToCompute.MAC, IP: sResp.EngineToCompute.IP,
		}, sResp.EngineToCompute.FirstPSN)
		call(poolCtl, ctl.Request{Op: "connect_qp", QPN: mResp.QPN, Remote: sResp.EngineToPool})
	}
	setupAgainst(primaryCtl, 2000, 4000)
	setupAgainst(standbyCtl, 2100, 4100)

	// Lease monitor on the compute node: on death, tell the standby's
	// control port to promote — the multi-process form of Monitor.OnDeath.
	mcfg := ha.MonitorConfig{Interval: 2 * time.Millisecond, LeaseTimeout: 60 * time.Millisecond}
	mon := ha.NewMonitor(client, mcfg)
	mon.OnDeath(func() {
		_, _ = ctl.CallRetry(ctx, standbyCtl, ctl.Request{Op: "promote"})
	})
	mon.Start()
	t.Cleanup(mon.Stop)

	// Workload: write then read back a batch of records; the primary dies
	// partway through its RDMA post stream. Generous per-op timeouts absorb
	// the blackout; nothing is reissued by the app.
	primary.PreemptAfter(120)
	th, err := client.Thread(0)
	must(err)
	const records, recSize = 40, 256
	buf := make([]byte, recSize)
	for i := 0; i < records; i++ {
		for j := range buf {
			buf[j] = byte(i + j)
		}
		if err := th.WriteSync(0, buf, uint64(i*recSize), 30*time.Second); err != nil {
			t.Fatalf("write %d across failover: %v", i, err)
		}
	}
	dest := make([]byte, recSize)
	for i := 0; i < records; i++ {
		if err := th.ReadSync(0, uint64(i*recSize), dest, 30*time.Second); err != nil {
			t.Fatalf("read %d across failover: %v", i, err)
		}
		for j := range dest {
			if dest[j] != byte(i+j) {
				t.Fatalf("record %d corrupted at byte %d after failover", i, j)
			}
		}
	}

	// The kill must actually have fired mid-workload (120 posts is a few
	// records in), and the standby must have taken over via the ctl path.
	if !primary.Preempted() {
		t.Fatal("preemption never fired: workload too short for the configured kill point")
	}
	if !standbyEC.Standby().Promoted() {
		t.Fatal("standby never promoted")
	}
	if mon.Deaths() == 0 {
		t.Fatal("monitor never observed the death")
	}

	// And the pool holds every record — served by two different engines.
	got, err := pool.Peek(0, 0, records*recSize)
	must(err)
	for i := 0; i < records; i++ {
		for j := 0; j < recSize; j++ {
			if got[i*recSize+j] != byte(i+j) {
				t.Fatalf("pool record %d byte %d wrong", i, j)
			}
		}
	}
}
