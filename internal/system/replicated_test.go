package system

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"cowbird/internal/core"
)

// TestPoolReplicasFailover runs the full stack with two pool replicas,
// kills the primary, and checks reads transparently fail over with correct
// data; killing the survivor too turns waits into ErrPoolDegraded
// advisories instead of silent spins.
func TestPoolReplicasFailover(t *testing.T) {
	s := startSystem(t, func(c *Config) {
		c.PoolReplicas = 2
		c.PoolRetransmitTimeout = 300 * time.Microsecond
		c.PoolMaxRetries = 3
		c.Spot.PoolHeartbeatInterval = 200 * time.Microsecond
	})
	if len(s.Pools) != 2 || s.Pool != s.Pools[0] {
		t.Fatalf("expected 2 pools with Pools[0] primary, got %d", len(s.Pools))
	}
	th, _ := s.Client.Thread(0)

	data := bytes.Repeat([]byte{0xC3}, 1024)
	if err := th.WriteSync(0, data, 16384, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	// The acked write is mirrored: present on both replicas.
	for r, p := range s.Pools {
		got, err := p.Peek(0, 16384, len(data))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("replica %d missing acked write", r)
		}
	}

	s.Pools[0].Crash()
	dest := make([]byte, len(data))
	if err := th.ReadSync(0, 16384, dest, 10*time.Second); err != nil {
		t.Fatalf("read after primary crash: %v", err)
	}
	if !bytes.Equal(dest, data) {
		t.Fatal("failover read returned wrong data")
	}
	if !s.Spot.PoolDegraded() {
		t.Fatal("engine should report the pool degraded")
	}
	if st := s.Spot.Stats(); st.PoolFailovers != 1 {
		t.Fatalf("PoolFailovers = %d, want 1", st.PoolFailovers)
	}

	// Lose the survivor as well: outstanding waits now surface the
	// degradation advisory instead of spinning silently.
	s.Pools[1].Crash()
	id, err := th.AsyncRead(0, 16384, dest)
	if err != nil {
		t.Fatal(err)
	}
	g := th.PollCreate()
	if err := g.Add(id); err != nil {
		t.Fatal(err)
	}
	if _, werr := g.WaitErr(1, 50*time.Millisecond); !errors.Is(werr, core.ErrPoolDegraded) {
		t.Fatalf("WaitErr = %v, want ErrPoolDegraded", werr)
	}
}

// TestP4RejectsPoolReplicas: replication is a Spot capability; the switch
// pipeline cannot mirror writes, so the config is rejected at Setup.
func TestP4RejectsPoolReplicas(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Engine = EngineP4
	cfg.PoolReplicas = 2
	if _, err := New(cfg); err == nil {
		t.Fatal("EngineP4 with PoolReplicas=2 must be a config error")
	}
}
