package system

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cowbird/internal/core"
	"cowbird/internal/rdma"
	"cowbird/internal/rings"
	"cowbird/internal/telemetry"
	"cowbird/internal/wire"
)

// TestScalingStressManyQueueSets is the -race workout for the bounded-state
// claim: 512 registered queue sets with only 8 active, deterministic frame
// loss, and control-plane churn — a new instance registered and another
// adopted mid-traffic — while two observer goroutines hammer Stats() and the
// telemetry registry. The registered-but-idle majority exercises exactly the
// state the control/data split bounds (snapshot size, parked workers,
// per-queue soft state); the assertions are exactly-once completion
// accounting across every instance and zero data corruption. Run with
// -race: snapshot publication, the adoption barrier, loss recovery, and the
// scrape paths must share no unsynchronized state even while the instance
// set itself is changing under load.
//
// The idle pacing is deliberately slow (4 s probes, 16 s heartbeats) and
// the workloads are async batches: 512 parked workers still cost one timer
// wakeup each per interval, and on the small race-instrumented CI hosts the
// test would otherwise spend its budget on idle probe traffic instead of on
// the interleavings it exists to explore.
func TestScalingStressManyQueueSets(t *testing.T) {
	const (
		totalQueueSets = 512
		activeThreads  = 8
		opsPerThread   = 60
		sideOps        = 15 // write/read pairs on each side instance
	)
	if testing.Short() {
		t.Skip("512-queue-set wiring is not short-mode material")
	}
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	compact := rings.Layout{MetaEntries: 64, ReqDataBytes: 16 << 10, RespDataBytes: 16 << 10}
	tel := telemetry.New(telemetry.Config{SampleEvery: 64})
	// Race instrumentation can stall any goroutine — including a responder —
	// past the default 2 ms × 25 Go-Back-N budget, and exhausting it on the
	// sole pool replica wedges the instance by design (no failover target).
	// A wide retransmission budget keeps loss recovery live so the test
	// exercises interleavings, not spurious replica deaths.
	nicCfg := rdma.DefaultConfig()
	nicCfg.RetransmitTimeout = 50 * time.Millisecond
	nicCfg.MaxRetries = 200
	s := startSystem(t, func(c *Config) {
		c.Threads = totalQueueSets
		c.Layout = compact
		c.Telemetry = tel
		c.NIC = nicCfg
		// Idle workers must park, not spin: 504 of the 512 queue sets never
		// see traffic, and the test asserts the engine carries them without
		// burning cores on their behalf.
		c.Spot.IdleSpinRounds = -1
		c.Spot.IdleYieldRounds = -1
		// 4 s probes: under race each parked worker's wakeup is a fully
		// instrumented fabric round trip, and when this test runs late in
		// the suite (big heap, instrumented GC) 512 wakeups/s of those is
		// enough background load to stretch the active batches past their
		// deadlines. Worker discovery of the side instances pays at most
		// one interval.
		c.Spot.ProbeInterval = 4 * time.Second
		c.Spot.HeartbeatInterval = 16 * time.Second
		c.Spot.StagingBytes = 32 << 10
	})

	// Deterministic loss: every 67th frame disappears. Go-Back-N recovers;
	// the op stream must not notice beyond latency.
	var frames atomic.Uint64
	s.Fabric.SetLossFn(func([]byte) bool { return frames.Add(1)%67 == 0 })

	stop := make(chan struct{})
	var scrapeWG sync.WaitGroup
	scrapeWG.Add(2)
	go func() { // Stats scrape: snapshot loads racing snapshot publication
		defer scrapeWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = s.Spot.Stats()
				_ = s.Spot.PoolDegraded()
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()
	go func() { // telemetry scrape: the /metrics path
		defer scrapeWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = tel.Reg.Snapshot()
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()

	// batchPairs drives n write/read pairs as two async batches — writes,
	// barrier, reads — so one worker-discovery gap amortizes over the whole
	// batch instead of gating every op.
	batchPairs := func(th *core.Thread, regionID uint16, n int, seed byte, base uint64) error {
		data := bytes.Repeat([]byte{seed}, 128)
		ids := make([]core.ReqID, 0, n)
		for k := 0; k < n; k++ {
			id, err := th.AsyncWrite(regionID, data, base+uint64(k)*256)
			if err != nil {
				return fmt.Errorf("write %d: %w", k, err)
			}
			ids = append(ids, id)
		}
		if !th.WaitAll(ids, 180*time.Second) {
			return fmt.Errorf("write batch timed out")
		}
		dests := make([][]byte, n)
		ids = ids[:0]
		for k := 0; k < n; k++ {
			dests[k] = make([]byte, len(data))
			id, err := th.AsyncRead(regionID, base+uint64(k)*256, dests[k])
			if err != nil {
				return fmt.Errorf("read %d: %w", k, err)
			}
			ids = append(ids, id)
		}
		if !th.WaitAll(ids, 180*time.Second) {
			return fmt.Errorf("read batch timed out")
		}
		for k, dest := range dests {
			if !bytes.Equal(dest, data) {
				return fmt.Errorf("op %d data mismatch", k)
			}
		}
		return nil
	}

	// sideInstance builds a fresh compute NIC + single-thread client and a
	// new pool region, returning everything needed to register or adopt it
	// on the running engine.
	sideInstance := func(i int, regionID uint16) (*core.Client, *core.Instance, *rdma.NIC) {
		compute := rdma.NewNIC(s.Fabric,
			wire.MAC{0x02, 0xC0, 0, 9, 0, byte(i)}, wire.IPv4Addr{10, 0, 9, byte(i)}, nicCfg)
		t.Cleanup(compute.Close)
		client, err := core.NewClient(compute, core.ClientConfig{
			Threads: 1, Layout: compact, BaseVA: 0x10_0000,
		})
		if err != nil {
			t.Fatal(err)
		}
		region, err := s.Pool.AllocRegion(regionID, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		client.RegisterRegion(region)
		return client, client.Describe(100 + i), compute
	}

	// Control-plane churn, concurrent with the main traffic below: register
	// one new instance through the control path, adopt another (never served,
	// so its durable red blocks are zero — a valid takeover image), and
	// verify both serve traffic afterwards.
	ctlErr := make(chan error, 1)
	go func() {
		ctlErr <- func() error {
			time.Sleep(20 * time.Millisecond) // let the main workload get going

			regClient, regInst, regNIC := sideInstance(1, 1)
			if err := WireSpotInstance(s.Spot, regInst, regNIC, s.Pool.NIC()); err != nil {
				return fmt.Errorf("register: %w", err)
			}
			th, err := regClient.Thread(0)
			if err != nil {
				return err
			}
			if err := batchPairs(th, 1, sideOps, 0xD1, 0); err != nil {
				return fmt.Errorf("registered instance: %w", err)
			}

			adClient, adInst, adNIC := sideInstance(2, 2)
			unused := rdma.NewCQ()
			eComp := s.Spot.NIC().CreateQP(s.Spot.CQ(), unused, 7000)
			cQP := adNIC.CreateQP(rdma.NewCQ(), rdma.NewCQ(), 7100)
			eComp.Connect(rdma.RemoteEndpoint{QPN: cQP.QPN(), MAC: adNIC.MAC(), IP: adNIC.IP()}, 7100)
			cQP.Connect(rdma.RemoteEndpoint{QPN: eComp.QPN(), MAC: s.Spot.NIC().MAC(), IP: s.Spot.NIC().IP()}, 7000)
			eMem := s.Spot.NIC().CreateQP(s.Spot.CQ(), unused, 7200)
			mQP := s.Pool.NIC().CreateQP(rdma.NewCQ(), rdma.NewCQ(), 7300)
			eMem.Connect(rdma.RemoteEndpoint{QPN: mQP.QPN(), MAC: s.Pool.NIC().MAC(), IP: s.Pool.NIC().IP()}, 7300)
			mQP.Connect(rdma.RemoteEndpoint{QPN: eMem.QPN(), MAC: s.Spot.NIC().MAC(), IP: s.Spot.NIC().IP()}, 7200)
			if err := s.Spot.AdoptInstance(adInst, eComp, eMem); err != nil {
				return fmt.Errorf("adopt: %w", err)
			}
			ath, err := adClient.Thread(0)
			if err != nil {
				return err
			}
			if err := batchPairs(ath, 2, sideOps, 0xD2, 0); err != nil {
				return fmt.Errorf("adopted instance: %w", err)
			}
			return nil
		}()
	}()

	// Main traffic: 8 of the 512 queue sets active.
	errs := make([]error, activeThreads)
	var workWG sync.WaitGroup
	for i := 0; i < activeThreads; i++ {
		workWG.Add(1)
		go func(ti int) {
			defer workWG.Done()
			th, err := s.Client.Thread(ti)
			if err != nil {
				errs[ti] = err
				return
			}
			errs[ti] = batchPairs(th, 0, opsPerThread, byte(ti+1), uint64(ti)*64<<10)
		}(i)
	}
	workWG.Wait()
	if err := <-ctlErr; err != nil {
		t.Fatal(err)
	}
	close(stop)
	scrapeWG.Wait()
	for ti, err := range errs {
		if err != nil {
			t.Fatalf("thread %d: %v (a lost completion surfaces here as a timeout)", ti, err)
		}
	}

	// Exactly-once accounting across all three instances: one metadata entry
	// per op, none lost, none double-served — through loss recovery, snapshot
	// republication, and the adoption barrier.
	st := s.Spot.Stats()
	wantEntries := int64(2*activeThreads*opsPerThread + 2*2*sideOps)
	wantEach := wantEntries / 2
	if st.EntriesServed != wantEntries ||
		st.ReadsExecuted != wantEach || st.WritesExecuted != wantEach {
		t.Fatalf("completion accounting off: served=%d reads=%d writes=%d, want %d/%d/%d",
			st.EntriesServed, st.ReadsExecuted, st.WritesExecuted,
			wantEntries, wantEach, wantEach)
	}
	t.Logf("scaling stress: %d queue sets registered, %d entries served, %d frames (%d dropped)",
		totalQueueSets+2, st.EntriesServed, frames.Load(), frames.Load()/67)
}
