package system

import (
	"bytes"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// spotHotPathContention reads the runtime mutex profile and sums contention
// events whose stacks pass through the spot engine's per-request path.
// Cold-path frames — the adoption barrier, instance registration, the
// control plane — are expected to contend by design and are excluded; the
// point of the gate is the serve path, which after the run-to-completion
// refactor holds no shared lock at all.
func spotHotPathContention() (events int64, stacks []string) {
	var recs []runtime.BlockProfileRecord
	n, ok := runtime.MutexProfile(nil)
	for !ok {
		recs = make([]runtime.BlockProfileRecord, n+64)
		n, ok = runtime.MutexProfile(recs)
	}
	recs = recs[:n]
	coldPath := []string{
		".quiesceWorkers", ".AdoptInstance", ".addInstance",
		".markReplicaDead", ".PoolDegraded", ".startWorkers", ".Stop",
	}
rec:
	for _, r := range recs {
		frames := runtime.CallersFrames(r.Stack())
		var hot bool
		var desc []string
		for {
			fr, more := frames.Next()
			desc = append(desc, fr.Function)
			if strings.Contains(fr.Function, "cowbird/internal/engine/spot.") {
				for _, cold := range coldPath {
					if strings.Contains(fr.Function, cold) {
						continue rec
					}
				}
				hot = true
			}
			if !more {
				break
			}
		}
		if hot {
			events += r.Count
			stacks = append(stacks, fmt.Sprintf("%d events: %s", r.Count, strings.Join(desc, " <- ")))
		}
	}
	return events, stacks
}

// TestHotPathMutexProfileClean is the contention smoke gate: it runs a
// multicore workload with mutex profiling at full sampling and fails if the
// spot engine's serve path shows up in the profile. The worker round lock
// (worker.roundMu) is taken once per round but only ever by its own worker
// outside an adoption, so it must record zero contention; ioMu must never
// appear because workers no longer touch it. A regression that reintroduces
// a shared lock on the per-request path fails this test before it shows up
// as a scaling-curve plateau.
func TestHotPathMutexProfileClean(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	s := startSystem(t, func(c *Config) { c.Threads = 4 })

	// Enable profiling only for the measured window so earlier tests in
	// this binary can't pollute the gate; diff against whatever the profile
	// already holds anyway, for belt and suspenders.
	base, _ := spotHotPathContention()
	old := runtime.SetMutexProfileFraction(1)
	defer runtime.SetMutexProfileFraction(old)

	var wg sync.WaitGroup
	for ti := 0; ti < 4; ti++ {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			th, err := s.Client.Thread(ti)
			if err != nil {
				t.Error(err)
				return
			}
			data := bytes.Repeat([]byte{byte(ti + 1)}, 256)
			dest := make([]byte, len(data))
			base := uint64(ti) * 256 << 10
			for k := 0; k < 200; k++ {
				off := base + uint64(k%64)*512
				if err := th.WriteSync(0, data, off, 10*time.Second); err != nil {
					t.Errorf("thread %d write %d: %v", ti, k, err)
					return
				}
				if err := th.ReadSync(0, off, dest, 10*time.Second); err != nil {
					t.Errorf("thread %d read %d: %v", ti, k, err)
					return
				}
			}
		}(ti)
	}
	wg.Wait()

	events, stacks := spotHotPathContention()
	// A handful of events is tolerated for scheduler noise on oversubscribed
	// CI hosts; a lock actually shared between workers records thousands
	// under this op count.
	const budget = 25
	if events-base > budget {
		t.Fatalf("spot hot-path lock contention: %d events (budget %d)\n%s",
			events-base, budget, strings.Join(stacks, "\n"))
	}
	t.Logf("spot hot-path contention events: %d (budget %d)", events-base, budget)
}
