package system

import (
	"bytes"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// hotPathContention reads the runtime mutex profile and sums contention
// events on locks the engine package *owns*: records whose innermost
// non-runtime/sync frame — the function that actually held the mutex —
// carries pkgPrefix (a fully-qualified function-name prefix such as
// "cowbird/internal/engine/spot."). Records where an engine frame merely
// appears deeper in the stack are the rdma layer's own sharded per-QP /
// per-CQ / inbox locks, contended by design against the fabric's delivery
// goroutines and gated by that layer's benchmarks, not here. Cold-path
// owners — the adoption barrier, instance registration, the control
// plane — are expected to contend and are excluded; the point of the gate
// is the per-request path, which after the control/data split holds no
// shared engine lock at all. Channel operations never appear here:
// runtime.MutexProfile records only sync.Mutex/RWMutex contention, so the
// control goroutine's rendezvous channel is invisible by construction,
// which is exactly the property the gate wants (channel handoffs are
// allowed on control ops, locks are not).
func hotPathContention(pkgPrefix string, coldPath []string) (events int64, stacks []string) {
	var recs []runtime.BlockProfileRecord
	n, ok := runtime.MutexProfile(nil)
	for !ok {
		recs = make([]runtime.BlockProfileRecord, n+64)
		n, ok = runtime.MutexProfile(recs)
	}
	recs = recs[:n]
rec:
	for _, r := range recs {
		frames := runtime.CallersFrames(r.Stack())
		var owner string
		var desc []string
		for {
			fr, more := frames.Next()
			desc = append(desc, fr.Function)
			if owner == "" && !strings.HasPrefix(fr.Function, "sync.") &&
				!strings.HasPrefix(fr.Function, "runtime.") {
				owner = fr.Function
			}
			if !more {
				break
			}
		}
		if !strings.Contains(owner, pkgPrefix) {
			continue
		}
		for _, cold := range coldPath {
			if strings.Contains(owner, cold) {
				continue rec
			}
		}
		events += r.Count
		stacks = append(stacks, fmt.Sprintf("%d events: %s", r.Count, strings.Join(desc, " <- ")))
	}
	return events, stacks
}

// spotColdPath lists the spot engine frames allowed to contend: the
// stop-the-world adoption barrier, worker lifecycle, replica failover
// bookkeeping, and the control goroutine that publishes instance snapshots
// (ctlLoop serializes control ops under ctlGate; runCtl is its inline
// fallback after Stop). None of these sit on the serve path.
var spotColdPath = []string{
	".quiesceWorkers", ".AdoptInstance", ".addInstance",
	".markReplicaDead", ".PoolDegraded", ".startWorkers", ".Stop",
	".ctlLoop", ".runCtl", ".publishInstance",
}

// p4ColdPath lists the p4 engine frames allowed to contend: Setup is the
// control path (ctlMu serializes snapshot publication), Stop tears down the
// probe goroutine. Process and everything under it must never appear — the
// datapath reads one atomic snapshot pointer and owns all soft state on the
// fabric's forwarding goroutine.
var p4ColdPath = []string{".Setup", ".Stop"}

// driveMutexGateTraffic runs the measured window: four client threads doing
// synchronous write/read pairs against region 0, enough volume that a lock
// actually shared on the per-request path records thousands of events.
func driveMutexGateTraffic(t *testing.T, s *System, threads int) {
	t.Helper()
	var wg sync.WaitGroup
	for ti := 0; ti < threads; ti++ {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			th, err := s.Client.Thread(ti)
			if err != nil {
				t.Error(err)
				return
			}
			data := bytes.Repeat([]byte{byte(ti + 1)}, 256)
			dest := make([]byte, len(data))
			base := uint64(ti) * 256 << 10
			// Ring-full is backpressure, not failure: request-data ring
			// bytes are reclaimed on the engine's bookkeeping cadence, so a
			// slow measured run (race-instrumented hosts) can briefly
			// outpace reclamation even with sync ops. Retry until the ring
			// drains; only a persistent error is real.
			retrying := func(op func() error) error {
				deadline := time.Now().Add(60 * time.Second)
				for {
					err := op()
					if err == nil || !strings.Contains(err.Error(), "ring full") ||
						time.Now().After(deadline) {
						return err
					}
					time.Sleep(200 * time.Microsecond)
				}
			}
			for k := 0; k < 200; k++ {
				off := base + uint64(k%64)*512
				if err := retrying(func() error { return th.WriteSync(0, data, off, 10*time.Second) }); err != nil {
					t.Errorf("thread %d write %d: %v", ti, k, err)
					return
				}
				if err := retrying(func() error { return th.ReadSync(0, off, dest, 10*time.Second) }); err != nil {
					t.Errorf("thread %d read %d: %v", ti, k, err)
					return
				}
			}
		}(ti)
	}
	wg.Wait()
}

// runMutexGate is the shared body of the contention smoke gates: start a
// deployment, enable mutex profiling at full sampling for the measured
// window only, drive traffic, and fail if the engine package's per-request
// path shows up in the profile beyond scheduler noise.
func runMutexGate(t *testing.T, mutate func(*Config), pkgPrefix string, coldPath []string) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	s := startSystem(t, mutate)

	// Enable profiling only for the measured window so earlier tests in
	// this binary can't pollute the gate; diff against whatever the profile
	// already holds anyway, for belt and suspenders.
	base, _ := hotPathContention(pkgPrefix, coldPath)
	old := runtime.SetMutexProfileFraction(1)
	defer runtime.SetMutexProfileFraction(old)

	driveMutexGateTraffic(t, s, 4)

	events, stacks := hotPathContention(pkgPrefix, coldPath)
	// A handful of events is tolerated for scheduler noise on oversubscribed
	// CI hosts; a lock actually shared between workers records thousands
	// under this op count.
	const budget = 25
	if events-base > budget {
		t.Fatalf("%s hot-path lock contention: %d events (budget %d)\n%s",
			pkgPrefix, events-base, budget, strings.Join(stacks, "\n"))
	}
	t.Logf("%s hot-path contention events: %d (budget %d)", pkgPrefix, events-base, budget)
}

// TestHotPathMutexProfileClean is the contention smoke gate for the spot
// engine's parallel (sharded-worker) datapath: the worker round lock
// (worker.roundMu) is taken once per round but only ever by its own worker
// outside an adoption, so it must record zero contention; ioMu must never
// appear because workers no longer touch it. A regression that reintroduces
// a shared lock on the per-request path fails this test before it shows up
// as a scaling-curve plateau.
func TestHotPathMutexProfileClean(t *testing.T) {
	runMutexGate(t, func(c *Config) { c.Threads = 4 },
		"cowbird/internal/engine/spot.", spotColdPath)
}

// TestHotPathMutexProfileCleanSpotSerial gates the spot serial loop: one
// goroutine serves every queue of every instance, taking the adoption fence
// (ioMu) exactly once per full pass and reading the instance set from an
// atomic snapshot. No per-queue or per-instance lock may appear.
func TestHotPathMutexProfileCleanSpotSerial(t *testing.T) {
	runMutexGate(t, func(c *Config) { c.Threads = 4; c.Spot.Serial = true },
		"cowbird/internal/engine/spot.", spotColdPath)
}

// TestHotPathMutexProfileCleanP4 gates the p4 engine: Process runs on the
// fabric's forwarding goroutine against an atomically-loaded COW snapshot
// of the instance table, so no p4 frame outside Setup/Stop may contend.
func TestHotPathMutexProfileCleanP4(t *testing.T) {
	runMutexGate(t, func(c *Config) { c.Threads = 4; c.Engine = EngineP4 },
		"cowbird/internal/engine/p4.", p4ColdPath)
}
