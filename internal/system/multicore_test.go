package system

import (
	"bytes"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cowbird/internal/telemetry"
)

// TestMulticoreStressUnderLoss drives 8 queue sets at GOMAXPROCS=4 through
// the run-to-completion sharded datapath while the fabric drops a
// deterministic ~1.5% of frames and two observer goroutines hammer Stats()
// and the telemetry registry. It asserts exactly-once completion accounting
// (every op completes, the engine served exactly one entry per op) and a
// bounded p99 — the Clio-style property that tails stay flat when
// parallelism is real. Run it with -race: the point is that worker rounds,
// the adoption barrier, loss recovery, and the scrape paths share no
// unsynchronized state.
func TestMulticoreStressUnderLoss(t *testing.T) {
	const (
		threads      = 8
		opsPerThread = 150
	)
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	tel := telemetry.New(telemetry.Config{SampleEvery: 64})
	s := startSystem(t, func(c *Config) {
		c.Threads = threads
		c.Telemetry = tel
		c.Spot.AdaptiveBatch = true // the controller must hold up under stress too
		c.NIC.AdaptiveInboxBatch = true
	})

	// Deterministic loss: every 67th frame disappears. Go-Back-N recovers;
	// the op stream must not notice beyond latency.
	var frames atomic.Uint64
	s.Fabric.SetLossFn(func([]byte) bool { return frames.Add(1)%67 == 0 })

	stop := make(chan struct{})
	var scrapeWG sync.WaitGroup
	scrapeWG.Add(2)
	go func() { // Stats scrape: aggregates every shard's counters
		defer scrapeWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = s.Spot.Stats()
				_ = s.Spot.PoolDegraded()
				runtime.Gosched()
			}
		}
	}()
	go func() { // telemetry scrape: the /metrics path
		defer scrapeWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = tel.Reg.Snapshot()
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()

	lats := make([][]time.Duration, threads)
	errs := make([]error, threads)
	var workWG sync.WaitGroup
	for i := 0; i < threads; i++ {
		workWG.Add(1)
		go func(ti int) {
			defer workWG.Done()
			th, err := s.Client.Thread(ti)
			if err != nil {
				errs[ti] = err
				return
			}
			data := bytes.Repeat([]byte{byte(ti + 1)}, 128)
			dest := make([]byte, len(data))
			base := uint64(ti) * 64 << 10
			for k := 0; k < opsPerThread; k++ {
				off := base + uint64(k%128)*256
				t0 := time.Now()
				if err := th.WriteSync(0, data, off, 30*time.Second); err != nil {
					errs[ti] = fmt.Errorf("op %d write: %w", k, err)
					return
				}
				if err := th.ReadSync(0, off, dest, 30*time.Second); err != nil {
					errs[ti] = fmt.Errorf("op %d read: %w", k, err)
					return
				}
				lats[ti] = append(lats[ti], time.Since(t0))
				if !bytes.Equal(dest, data) {
					errs[ti] = fmt.Errorf("op %d data mismatch", k)
					return
				}
			}
		}(i)
	}
	workWG.Wait()
	close(stop)
	scrapeWG.Wait()
	for ti, err := range errs {
		if err != nil {
			t.Fatalf("thread %d: %v (a lost completion surfaces here as a timeout)", ti, err)
		}
	}

	// Exactly-once accounting: one metadata entry per op, none lost, none
	// double-served, across every shard.
	st := s.Spot.Stats()
	wantEntries := int64(2 * threads * opsPerThread)
	if st.EntriesServed != wantEntries ||
		st.ReadsExecuted != wantEntries/2 || st.WritesExecuted != wantEntries/2 {
		t.Fatalf("completion accounting off: served=%d reads=%d writes=%d, want %d/%d/%d",
			st.EntriesServed, st.ReadsExecuted, st.WritesExecuted,
			wantEntries, wantEntries/2, wantEntries/2)
	}

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	p99 := all[len(all)*99/100]
	// Bounded tail: generous on purpose (race detector + loss recovery +
	// an oversubscribed harness), but a lost completion or a livelocked
	// worker would blow far past it.
	if p99 > 5*time.Second {
		t.Fatalf("p99 %v exceeds bound (p50 %v)", p99, all[len(all)/2])
	}
	t.Logf("stress: %d ops, p50=%v p99=%v, %d frames (%d dropped)",
		len(all), all[len(all)/2], p99, frames.Load(), frames.Load()/67)
}
