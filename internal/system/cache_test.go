package system

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"cowbird/internal/cache"
	"cowbird/internal/chaos"
	"cowbird/internal/telemetry"
)

// testCacheConfig is a small tier that fits the default deployment and, with
// only 64 lines, churns through CLOCK eviction under any real workload — the
// regime where the fill-admission and generation guards earn their keep.
func testCacheConfig() cache.Config {
	return cache.Config{
		Enabled:  true,
		LineSize: 256,
		Lines:    64,
		Shards:   4,
	}
}

func TestCacheDisabledByDefault(t *testing.T) {
	s := startSystem(t, nil)
	if s.Client.Cache() != nil {
		t.Fatal("default deployment must not construct a cache")
	}
}

// TestCacheReadThroughAndHit: the first read of a line goes to the fabric
// and fills; the second is served locally with identical bytes.
func TestCacheReadThroughAndHit(t *testing.T) {
	s := startSystem(t, func(c *Config) { c.Cache = testCacheConfig() })
	cc := s.Client.Cache()
	if cc == nil {
		t.Fatal("cache not constructed")
	}
	th, _ := s.Client.Thread(0)

	data := bytes.Repeat([]byte{0x5A}, 256)
	if err := th.WriteSync(0, data, 4096, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// The write-through already installed the line, so even the first read
	// may hit; evict it via InvalidateAll to measure the read-through path.
	cc.InvalidateAll()

	dest := make([]byte, 256)
	if err := th.ReadSync(0, 4096, dest, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dest, data) {
		t.Fatal("read-through returned wrong bytes")
	}
	st := cc.Stats()
	if st.Misses == 0 {
		t.Fatal("first read after invalidation must miss")
	}
	for i := range dest {
		dest[i] = 0
	}
	if err := th.ReadSync(0, 4096, dest, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dest, data) {
		t.Fatal("cached read returned wrong bytes")
	}
	if got := cc.Stats(); got.Hits <= st.Hits {
		t.Fatalf("second read must hit (hits %d -> %d)", st.Hits, got.Hits)
	}
}

// TestCacheReadYourWrites: a write immediately followed by a read returns
// the new bytes — the write-through image, not a stale fill.
func TestCacheReadYourWrites(t *testing.T) {
	s := startSystem(t, func(c *Config) { c.Cache = testCacheConfig() })
	th, _ := s.Client.Thread(0)

	old := bytes.Repeat([]byte{0x11}, 256)
	if err := th.WriteSync(0, old, 8192, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	dest := make([]byte, 256)
	if err := th.ReadSync(0, 8192, dest, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		fresh := bytes.Repeat([]byte{byte(0x20 + i)}, 256)
		if err := th.WriteSync(0, fresh, 8192, 5*time.Second); err != nil {
			t.Fatal(err)
		}
		if err := th.ReadSync(0, 8192, dest, 5*time.Second); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dest, fresh) {
			t.Fatalf("round %d: read after write returned stale bytes %#x", i, dest[0])
		}
	}
}

// TestCacheSharedAcrossThreadsRace hammers one shared cache from four
// client threads under -race: each thread owns 16 slots it writes with tags
// from its own alphabet and re-reads (read-your-writes must hold — ring
// FIFO plus write-through plus the fill-admission window guarantee it even
// with foreign fills racing), while also reading foreign slots, whose bytes
// must always belong to the owner's alphabet (or be the initial zero) —
// never a mix-up from a misdirected fill or a resurrected pre-write value.
func TestCacheSharedAcrossThreadsRace(t *testing.T) {
	const (
		threads      = 4
		slotsPerThr  = 16
		slotSize     = 256
		opsPerThread = 200
	)
	s := startSystem(t, func(c *Config) {
		c.Threads = threads
		c.Cache = testCacheConfig()
	})
	tag := func(ti, seq int) byte { return byte((ti+1)<<4 | seq&0xF) }
	owner := func(slot int) int { return slot / slotsPerThr }

	var wg sync.WaitGroup
	errs := make(chan error, threads)
	for ti := 0; ti < threads; ti++ {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			th, err := s.Client.Thread(ti)
			if err != nil {
				errs <- err
				return
			}
			rng := rand.New(rand.NewSource(int64(ti) + 1))
			buf := make([]byte, slotSize)
			dest := make([]byte, slotSize)
			lastTag := make(map[int]byte, slotsPerThr)
			for op := 0; op < opsPerThread; op++ {
				own := ti*slotsPerThr + rng.Intn(slotsPerThr)
				wr := tag(ti, op)
				for j := range buf {
					buf[j] = wr
				}
				if err := th.WriteSync(0, buf, uint64(own*slotSize), 10*time.Second); err != nil {
					errs <- fmt.Errorf("thread %d write: %w", ti, err)
					return
				}
				lastTag[own] = wr
				if err := th.ReadSync(0, uint64(own*slotSize), dest, 10*time.Second); err != nil {
					errs <- fmt.Errorf("thread %d own read: %w", ti, err)
					return
				}
				for j, b := range dest {
					if b != lastTag[own] {
						errs <- fmt.Errorf("thread %d slot %d byte %d: got %#x, want own last write %#x", ti, own, j, b, lastTag[own])
						return
					}
				}
				foreign := rng.Intn(threads * slotsPerThr)
				if err := th.ReadSync(0, uint64(foreign*slotSize), dest, 10*time.Second); err != nil {
					errs <- fmt.Errorf("thread %d foreign read: %w", ti, err)
					return
				}
				fo := owner(foreign)
				for j, b := range dest {
					if b != 0 && int(b>>4) != fo+1 {
						errs <- fmt.Errorf("thread %d foreign slot %d byte %d: got %#x, not in owner %d's alphabet", ti, foreign, j, b, fo)
						return
					}
				}
			}
			errs <- nil
		}(ti)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Client.Cache().Stats(); st.Hits == 0 {
		t.Fatal("shared-cache hammer never hit; cache not exercised")
	}
}

// TestCacheChaosPoolFailover replays the pool-crash chaos schedule against a
// two-replica deployment with the cache forced on (tiny, so eviction churn is
// constant): the invariant workload — every acked write readable, no
// completion lost or duplicated — must hold through transparent failover
// exactly as it does without the cache, while a second thread's read loop
// keeps pulling pool bytes into the shared cache to race the writes.
func TestCacheChaosPoolFailover(t *testing.T) {
	const seed = 23
	s := startSystem(t, func(c *Config) {
		c.Threads = 2
		c.PoolReplicas = 2
		c.PoolRetransmitTimeout = 300 * time.Microsecond
		c.PoolMaxRetries = 5
		c.Spot.PoolHeartbeatInterval = 200 * time.Microsecond
		c.Cache = testCacheConfig()
	})
	sched := chaos.Schedule{Seed: seed, Events: []chaos.Event{
		{At: 3 * time.Millisecond, Kind: chaos.KindPoolCrash, Pool: 0},
	}}
	inj := chaos.NewInjector(chaos.Target{Fabric: s.Fabric, Pools: s.Pools}, seed)
	defer inj.Close()
	injDone := make(chan struct{})
	go func() { inj.Run(sched); close(injDone) }()

	// Concurrent reader: same slots the workload writes, so its fills race
	// the workload's write-throughs on the shared cache.
	wcfg := chaos.DefaultWorkloadConfig()
	stopReader := make(chan struct{})
	readerErr := make(chan error, 1)
	go func() {
		th1, err := s.Client.Thread(1)
		if err != nil {
			readerErr <- err
			return
		}
		rng := rand.New(rand.NewSource(seed + 1))
		dest := make([]byte, wcfg.SlotSize)
		for {
			select {
			case <-stopReader:
				readerErr <- nil
				return
			default:
			}
			off := uint64(rng.Intn(wcfg.Slots) * wcfg.SlotSize)
			if err := th1.ReadSync(0, off, dest, 10*time.Second); err != nil {
				readerErr <- fmt.Errorf("reader: %w", err)
				return
			}
		}
	}()

	th0, _ := s.Client.Thread(0)
	if err := chaos.RunWorkload(th0, seed, wcfg); err != nil {
		t.Fatal(err)
	}
	close(stopReader)
	if err := <-readerErr; err != nil {
		t.Fatal(err)
	}
	<-injDone
	// During the workload itself hits are rare by design: half the ops are
	// writes and the async window keeps some in flight almost continuously,
	// which closes fill admission. Verify the lookups happened, and that the
	// tier still fills and serves normally now that the fabric is quiet —
	// on the surviving replica.
	if st := s.Client.Cache().Stats(); st.Hits+st.Misses == 0 {
		t.Fatal("chaos workload never consulted the cache")
	}
	dest := make([]byte, wcfg.SlotSize)
	if err := th0.ReadSync(0, 0, dest, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	before := s.Client.Cache().Stats().Hits
	if err := th0.ReadSync(0, 0, dest, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if s.Client.Cache().Stats().Hits <= before {
		t.Fatal("post-failover refill did not serve a hit")
	}
}

// TestCacheHitPathAllocFree gates the tentpole's zero-allocation claim on
// the real Thread API, not just the cache package: a warmed AsyncRead +
// Completed round trip must not allocate.
func TestCacheHitPathAllocFree(t *testing.T) {
	s := startSystem(t, func(c *Config) { c.Cache = testCacheConfig() })
	th, _ := s.Client.Thread(0)

	data := bytes.Repeat([]byte{0x77}, 256)
	if err := th.WriteSync(0, data, 0, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	dest := make([]byte, 256)
	if err := th.ReadSync(0, 0, dest, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		id, err := th.AsyncRead(0, 0, dest)
		if err != nil {
			t.Fatal(err)
		}
		if !id.LocalHit() || !th.Completed(id) {
			t.Fatal("warmed read must be a complete local hit")
		}
	})
	if avg != 0 {
		t.Fatalf("cache hit path allocates %v allocs/op, want 0", avg)
	}
}

// TestCacheMetricsExported: with a telemetry hub installed, the tier's
// gauges land in the shared registry (and from there in /metrics, /vars,
// and cowbird-dump -live, which all render the same snapshot).
func TestCacheMetricsExported(t *testing.T) {
	tel := telemetry.New(telemetry.Config{})
	s := startSystem(t, func(c *Config) {
		c.Cache = testCacheConfig()
		c.Telemetry = tel
	})
	th, _ := s.Client.Thread(0)
	data := bytes.Repeat([]byte{1}, 256)
	if err := th.WriteSync(0, data, 0, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	dest := make([]byte, 256)
	for i := 0; i < 3; i++ {
		if err := th.ReadSync(0, 0, dest, 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	snap := tel.Reg.Snapshot()
	for _, g := range []string{
		"cowbird_cache_hits", "cowbird_cache_misses", "cowbird_cache_hit_rate_permille",
		"cowbird_cache_resident_bytes", "cowbird_cache_capacity_bytes",
		"cowbird_cache_prefetch_issued", "cowbird_cache_prefetch_accuracy_permille",
	} {
		if _, ok := snap.Gauges[g]; !ok {
			t.Fatalf("gauge %s not exported (have %v)", g, snap.Gauges)
		}
	}
	if snap.Gauges["cowbird_cache_hits"] == 0 {
		t.Fatal("hit gauge stayed zero after warmed reads")
	}
	if snap.Gauges["cowbird_cache_capacity_bytes"] != 64*256 {
		t.Fatalf("capacity gauge = %d, want %d", snap.Gauges["cowbird_cache_capacity_bytes"], 64*256)
	}
	// The hit-latency histogram is sampled 1-in-N; force-sampled hub configs
	// are exercised in the telemetry package, here just assert registration.
	if _, ok := snap.Histograms["cowbird_cache_hit_ns"]; !ok {
		t.Fatal("cache hit-latency histogram not registered")
	}
}
