package system

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"cowbird/internal/core"
	"cowbird/internal/engine/spot"
)

// fleetRW drives one synchronous write+read-back through the tenant's
// thread 0 and verifies the bytes round-trip.
func fleetRW(t *testing.T, ten *Tenant, stripe uint16, off uint64, pattern byte) {
	t.Helper()
	th, err := ten.Client.Thread(0)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{pattern}, 64)
	wid, err := th.AsyncWrite(stripe, payload, off)
	if err != nil {
		t.Fatalf("tenant %d write: %v", ten.ID, err)
	}
	if !th.WaitAll([]core.ReqID{wid}, 10*time.Second) {
		t.Fatalf("tenant %d write to stripe %d timed out", ten.ID, stripe)
	}
	dest := make([]byte, 64)
	rid, err := th.AsyncRead(stripe, off, dest)
	if err != nil {
		t.Fatalf("tenant %d read: %v", ten.ID, err)
	}
	if !th.WaitAll([]core.ReqID{rid}, 10*time.Second) {
		t.Fatalf("tenant %d read of stripe %d timed out", ten.ID, stripe)
	}
	if !bytes.Equal(dest, payload) {
		t.Fatalf("tenant %d stripe %d: read %x..., want %x...", ten.ID, stripe, dest[:4], payload[:4])
	}
}

// TestFleetComposedAddressSpace provisions tenants across a multi-engine,
// multi-memnode fleet and checks that every stripe round-trips and that the
// bytes physically land on the directory-assigned memnode — the composed
// address space is real, not a mirror.
func TestFleetComposedAddressSpace(t *testing.T) {
	cfg := DefaultFleetConfig()
	cfg.Engines = 2
	cfg.Memnodes = 3
	cfg.StripesPerTenant = 2
	f, err := NewFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	const tenants = 6
	for id := 0; id < tenants; id++ {
		ten, err := f.AddTenant(id)
		if err != nil {
			t.Fatalf("add tenant %d: %v", id, err)
		}
		for stripe := uint16(0); stripe < uint16(cfg.StripesPerTenant); stripe++ {
			fleetRW(t, ten, stripe, uint64(64*int(stripe)), byte(0x10+id))
		}
	}

	// Placement check: each tenant's stripes span distinct memnodes, and the
	// written pattern is present in the home memnode's region (Peek reads
	// node memory directly, bypassing the datapath).
	for id := 0; id < tenants; id++ {
		ten, _ := f.Tenant(id)
		nodes := make(map[int]bool)
		for _, e := range ten.extents {
			nodes[e.Memnode] = true
			got, perr := f.Memnode(e.Memnode).Peek(e.NodeRegionID, uint64(64*int(e.Stripe)), 64)
			if perr != nil {
				t.Fatalf("tenant %d stripe %d peek: %v", id, e.Stripe, perr)
			}
			want := bytes.Repeat([]byte{byte(0x10 + id)}, 64)
			if !bytes.Equal(got, want) {
				t.Fatalf("tenant %d stripe %d not on memnode %d: got %x", id, e.Stripe, e.Memnode, got[:4])
			}
		}
		if len(nodes) != cfg.StripesPerTenant {
			t.Fatalf("tenant %d stripes landed on %d memnodes, want %d", id, len(nodes), cfg.StripesPerTenant)
		}
	}
}

// TestFleetMigrationAndFailure moves a tenant between engines with the
// adoption primitive and then kills an engine outright; in both cases the
// tenant's data plane must keep working and previously written bytes must
// survive.
func TestFleetMigrationAndFailure(t *testing.T) {
	cfg := DefaultFleetConfig()
	cfg.Engines = 3
	f, err := NewFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	const tenants = 5
	for id := 0; id < tenants; id++ {
		if _, err := f.AddTenant(id); err != nil {
			t.Fatal(err)
		}
	}
	ten, _ := f.Tenant(0)
	fleetRW(t, ten, 0, 0, 0xA1)

	// Live migration to a specific engine.
	target := (ten.Engine() + 1) % cfg.Engines
	if err := f.MigrateTenant(0, target); err != nil {
		t.Fatalf("migrate: %v", err)
	}
	if ten.Engine() != target {
		t.Fatalf("tenant 0 on engine %d after migration to %d", ten.Engine(), target)
	}
	fleetRW(t, ten, 0, 128, 0xA2)
	fleetRW(t, ten, 1, 0, 0xA3)

	// The pre-migration write must still be readable through the new engine.
	th, _ := ten.Client.Thread(0)
	dest := make([]byte, 64)
	rid, err := th.AsyncRead(0, 0, dest)
	if err != nil {
		t.Fatal(err)
	}
	if !th.WaitAll([]core.ReqID{rid}, 10*time.Second) {
		t.Fatal("post-migration read of old data timed out")
	}
	if dest[0] != 0xA1 {
		t.Fatalf("pre-migration data lost: got %x, want a1", dest[0])
	}

	// Abrupt engine failure: every resident tenant re-homes and serves.
	victim := ten.Engine()
	moved, err := f.FailEngine(victim)
	if err != nil {
		t.Fatalf("fail engine: %v", err)
	}
	if moved == 0 {
		t.Fatal("engine failure moved no tenants")
	}
	if ten.Engine() == victim {
		t.Fatal("tenant 0 still homed on the failed engine")
	}
	for id := 0; id < tenants; id++ {
		tt, _ := f.Tenant(id)
		fleetRW(t, tt, 0, 256, byte(0xB0+id))
	}
}

// TestFleetAddEngineRebalance grows the fleet and checks rebalancing moves
// only ring-reassigned tenants, which keep serving afterwards.
func TestFleetAddEngineRebalance(t *testing.T) {
	cfg := DefaultFleetConfig()
	cfg.Engines = 1
	f, err := NewFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Enough tenants that a fresh engine owning zero (or all) of them is
	// astronomically unlikely under consistent hashing with 64 vnodes.
	const tenants = 32
	for id := 0; id < tenants; id++ {
		if _, err := f.AddTenant(id); err != nil {
			t.Fatal(err)
		}
	}
	_, moved, err := f.AddEngine()
	if err != nil {
		t.Fatalf("add engine: %v", err)
	}
	if moved == 0 || moved == tenants {
		t.Fatalf("rebalance moved %d of %d tenants; consistent hashing should move a proper subset", moved, tenants)
	}
	for id := 0; id < tenants; id += 4 {
		ten, _ := f.Tenant(id)
		fleetRW(t, ten, 0, 0, byte(0xC0+id))
	}
}

// TestFleetQoSThrottle checks the token bucket actually bounds a tenant's
// throughput: an unlimited tenant must complete a burst much faster than a
// tightly rate-limited one.
func TestFleetQoSThrottle(t *testing.T) {
	cfg := DefaultFleetConfig()
	cfg.Engines = 1
	f, err := NewFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for id := 0; id < 2; id++ {
		if _, err := f.AddTenant(id); err != nil {
			t.Fatal(err)
		}
	}
	const ops = 100
	if err := f.SetTenantQoS(1, spot.TenantQoS{RatePerSec: 100, Burst: 8}); err != nil {
		t.Fatal(err)
	}

	run := func(id int) time.Duration {
		ten, _ := f.Tenant(id)
		th, terr := ten.Client.Thread(0)
		if terr != nil {
			t.Fatal(terr)
		}
		buf := make([]byte, 32)
		start := time.Now()
		for i := 0; i < ops; i++ {
			wid, werr := th.AsyncWrite(0, buf, uint64(i%16)*32)
			if werr != nil {
				t.Fatalf("tenant %d op %d: %v", id, i, werr)
			}
			if !th.WaitAll([]core.ReqID{wid}, 30*time.Second) {
				t.Fatalf("tenant %d op %d timed out", id, i)
			}
		}
		return time.Since(start)
	}

	free := run(0)
	limited := run(1)
	// 100 ops at 100 ops/s with burst 8 needs >= ~900 ms of bucket refill;
	// the free run finishes in the low hundreds of ms even with coarse
	// 1ms-granularity timers on a loaded 1-CPU host. Assert with margin.
	if limited < 600*time.Millisecond {
		t.Fatalf("rate-limited tenant finished in %v; bucket is not throttling", limited)
	}
	if limited < 3*free {
		t.Fatalf("throttled run (%v) not clearly slower than free run (%v)", limited, free)
	}
}

// TestFleetTenantCount exercises registration breadth cheaply: many
// tenants registered, a handful driven, directory ids all distinct.
func TestFleetTenantCount(t *testing.T) {
	if testing.Short() {
		t.Skip("registration breadth test")
	}
	cfg := DefaultFleetConfig()
	cfg.Engines = 2
	cfg.Memnodes = 4
	cfg.StripeSize = 32 << 10
	cfg.Layout.ReqDataBytes = 8 << 10
	cfg.Layout.RespDataBytes = 8 << 10
	f, err := NewFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	const tenants = 64
	for id := 0; id < tenants; id++ {
		if _, err := f.AddTenant(id); err != nil {
			t.Fatalf("tenant %d: %v", id, err)
		}
	}
	for id := 0; id < tenants; id += 16 {
		ten, _ := f.Tenant(id)
		fleetRW(t, ten, 0, 0, byte(id+1))
	}
	if _, err := f.AddTenant(3); err == nil {
		t.Fatal("duplicate tenant id accepted")
	}
	// Every (memnode, node-region-id) pair must be unique fleet-wide.
	seen := make(map[string]int)
	for id := 0; id < tenants; id++ {
		ten, _ := f.Tenant(id)
		for _, e := range ten.extents {
			k := fmt.Sprintf("%d/%d", e.Memnode, e.NodeRegionID)
			if prev, dup := seen[k]; dup {
				t.Fatalf("extent %s assigned to tenants %d and %d", k, prev, id)
			}
			seen[k] = id
		}
	}
}
