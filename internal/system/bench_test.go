package system

import (
	"testing"
	"time"

	"cowbird/internal/core"
)

// Functional throughput benchmarks: real protocol, real goroutines, real
// serialized frames. These measure the Go implementation (useful for
// regression tracking), NOT the paper's numbers — those come from
// internal/perfsim, because wall-clock Go includes scheduler and GC noise
// the paper's C++/Tofino testbed doesn't have.

func benchSystem(b *testing.B, kind EngineKind, size int, write bool) {
	cfg := DefaultConfig()
	cfg.Engine = kind
	cfg.Spot.ProbeInterval = 2 * time.Microsecond
	cfg.P4.ProbeInterval = 2 * time.Microsecond
	s, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	th, _ := s.Client.Thread(0)
	g := th.PollCreate()
	buf := make([]byte, size)
	const window = 32
	pending := 0
	b.SetBytes(int64(size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := uint64(i%1024) * uint64(size)
		for {
			var id core.ReqID
			var err error
			if write {
				id, err = th.AsyncWrite(0, buf, off)
			} else {
				id, err = th.AsyncRead(0, off, buf)
			}
			if err == nil {
				if err := g.Add(id); err != nil {
					b.Fatal(err)
				}
				pending++
				break
			}
			// Ring full: drain and retry.
			pending -= len(g.Wait(window, 100*time.Millisecond))
		}
		if pending >= window {
			pending -= len(g.Wait(window/2, time.Second))
		}
	}
	for pending > 0 {
		got := len(g.Wait(window, time.Second))
		if got == 0 {
			b.Fatalf("stalled with %d pending", pending)
		}
		pending -= got
	}
}

func BenchmarkSpotRead256(b *testing.B)  { benchSystem(b, EngineSpot, 256, false) }
func BenchmarkSpotWrite256(b *testing.B) { benchSystem(b, EngineSpot, 256, true) }
func BenchmarkP4Read256(b *testing.B)    { benchSystem(b, EngineP4, 256, false) }
func BenchmarkP4Write256(b *testing.B)   { benchSystem(b, EngineP4, 256, true) }
