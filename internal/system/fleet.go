package system

import (
	"fmt"
	"time"

	"cowbird/internal/cluster"
	"cowbird/internal/core"
	"cowbird/internal/engine/spot"
	"cowbird/internal/memnode"
	"cowbird/internal/rdma"
	"cowbird/internal/rings"
	"cowbird/internal/wire"
)

// Fleet assembles a multi-tenant deployment: a fleet of serial Spot
// engines, a pool of memnodes composing one remote address space, and many
// tenant compute nodes sharing them. Placement is policy from
// internal/cluster — a consistent-hash ring assigns each tenant's queue
// sets to an engine, and the region directory stripes each tenant's
// address space across memnodes — and this file is the mechanism: it turns
// ring and directory decisions into QP wiring, region allocation, and
// engine registration calls.
//
// The fleet deliberately reuses the single-tenant machinery one level
// down. Engines are ordinary spot.Engines in serial mode (one goroutine
// serving all resident tenants round-robin, with per-tenant token buckets
// and deficit-round-robin interleaving — spot.TenantQoS). Tenants are
// ordinary core.Clients; each one's Instance is registered with
// AddInstancePlaced, whose homes vector carries the directory's
// stripe→memnode placement. Migration between engines is the HA adoption
// primitive: RemoveInstance quiesces and releases the queue sets on the
// source, AdoptInstancePlaced replays the red blocks exactly-once on the
// target (DESIGN.md §15).
type Fleet struct {
	Fabric *rdma.Fabric

	cfg      FleetConfig
	engines  []*fleetEngine
	memnodes []*memnode.Node
	ring     *cluster.Ring
	dir      *cluster.Directory
	tenants  map[int]*Tenant
	psn      uint32
}

// fleetEngine is one engine slot: the engine, its NIC, and liveness.
type fleetEngine struct {
	id   int
	nic  *rdma.NIC
	eng  *spot.Engine
	dead bool
}

// Tenant is one compute node of the fleet: its client library, the engine
// currently serving its queue sets, and the placement needed to rebuild
// the engine-side wiring on migration.
type Tenant struct {
	ID     int
	Client *core.Client

	nic      *rdma.NIC
	engine   int // index into Fleet.engines
	inst     *core.Instance
	extents  []cluster.Extent
	repNodes []int                // memnode index per replica slot
	reps     []spot.PoolReplica   // region descriptors per replica slot (QPs rewired per engine)
	homes    [][]int              // stripe -> replica slots, AddInstancePlaced shape
	qos      spot.TenantQoS
}

// Engine returns the index of the engine currently serving the tenant.
func (t *Tenant) Engine() int { return t.engine }

// Extents returns the tenant's directory placement — which memnode and
// node-local region backs each stripe — for isolation checks and tooling.
func (t *Tenant) Extents() []cluster.Extent { return t.extents }

// FleetConfig sizes a fleet.
type FleetConfig struct {
	Engines  int
	Memnodes int
	// VNodes is the consistent-hash ring's virtual-node count per engine
	// (0: cluster.DefaultVNodes).
	VNodes int
	// StripesPerTenant and StripeSize shape each tenant's address space:
	// the directory places this many stripes, each a region of this size,
	// across distinct memnodes. The client sees them as regions
	// 0..StripesPerTenant-1.
	StripesPerTenant int
	StripeSize       int
	// Threads is the number of queue sets per tenant.
	Threads int
	Layout  rings.Layout
	NIC     rdma.Config
	// Spot tunes the engines. Serial is forced on — the fleet's engines
	// multiplex thousands of tenants on one goroutine each, relying on the
	// serial datapath's DRR scheduling and idle-probe pacing; a worker
	// goroutine per tenant queue set would defeat the bounded-state claim.
	Spot spot.Config
	// DefaultQoS is installed for every tenant at AddTenant;
	// Fleet.SetTenantQoS retunes individual tenants afterwards.
	DefaultQoS spot.TenantQoS
}

// DefaultFleetConfig returns a small fleet: 2 engines, 3 memnodes,
// 2-stripe tenants, compact rings sized so thousands of tenants fit in a
// test process.
func DefaultFleetConfig() FleetConfig {
	cfg := FleetConfig{
		Engines:          2,
		Memnodes:         3,
		StripesPerTenant: 2,
		StripeSize:       256 << 10,
		Threads:          1,
		Layout:           rings.Layout{MetaEntries: 64, ReqDataBytes: 16 << 10, RespDataBytes: 16 << 10},
		NIC:              rdma.DefaultConfig(),
		Spot:             spot.DefaultConfig(),
	}
	cfg.Spot.Serial = true
	cfg.Spot.StagingBytes = 256 << 10
	// Lease heartbeats are a red write per tenant queue per interval; at
	// fleet tenant counts the engine-scale default would drown the
	// datapath. The fleet has no HA failure detector watching the counter,
	// so a slow trickle is plenty.
	cfg.Spot.HeartbeatInterval = time.Second
	// Pool liveness READs fan out per tenant per memnode; same math.
	cfg.Spot.PoolHeartbeatInterval = 0
	return cfg
}

// Fleet addressing: distinct prefixes per role, tenant/engine/memnode
// index in the low bytes, so chaos tools can target any single link.
func tenantMAC(t int) wire.MAC  { return wire.MAC{0x02, 0xFA, 0, byte(t >> 16), byte(t >> 8), byte(t)} }
func engineMAC2(e int) wire.MAC { return wire.MAC{0x02, 0xFB, 0, 0, byte(e >> 8), byte(e)} }
func memMAC(m int) wire.MAC     { return wire.MAC{0x02, 0xFC, 0, 0, byte(m >> 8), byte(m)} }

func tenantIP(t int) wire.IPv4Addr  { return wire.IPv4Addr{10, 4, byte(t >> 8), byte(t)} }
func engineIP2(e int) wire.IPv4Addr { return wire.IPv4Addr{10, 5, byte(e >> 8), byte(e)} }
func memIP(m int) wire.IPv4Addr     { return wire.IPv4Addr{10, 6, byte(m >> 8), byte(m)} }

// NewFleet builds and starts a fleet: every engine running, every memnode
// attached, no tenants yet.
func NewFleet(cfg FleetConfig) (*Fleet, error) {
	if cfg.Engines <= 0 || cfg.Memnodes <= 0 {
		return nil, fmt.Errorf("system: fleet needs at least one engine and one memnode")
	}
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	if cfg.StripesPerTenant <= 0 {
		cfg.StripesPerTenant = 1
	}
	if cfg.StripeSize <= 0 {
		cfg.StripeSize = 256 << 10
	}
	cfg.Spot.Serial = true
	f := &Fleet{
		Fabric:  rdma.NewFabric(),
		cfg:     cfg,
		ring:    cluster.NewRing(cfg.VNodes),
		tenants: make(map[int]*Tenant),
		psn:     100_000,
	}
	for m := 0; m < cfg.Memnodes; m++ {
		f.memnodes = append(f.memnodes, memnode.New(f.Fabric, memMAC(m), memIP(m), cfg.NIC))
	}
	nodes := make([]int, cfg.Memnodes)
	for m := range nodes {
		nodes[m] = m
	}
	f.dir = cluster.NewDirectory(nodes)
	for e := 0; e < cfg.Engines; e++ {
		f.addEngineSlot()
	}
	return f, nil
}

// addEngineSlot builds, starts, and ring-registers one engine.
func (f *Fleet) addEngineSlot() int {
	id := len(f.engines)
	nic := rdma.NewNIC(f.Fabric, engineMAC2(id), engineIP2(id), f.cfg.NIC)
	eng := spot.New(nic, f.cfg.Spot)
	eng.Run()
	f.engines = append(f.engines, &fleetEngine{id: id, nic: nic, eng: eng})
	f.ring.Add(id)
	return id
}

// Engines returns the number of engine slots (live and dead).
func (f *Fleet) Engines() int { return len(f.engines) }

// Memnode returns memnode m, for test inspection (Peek) and fault
// injection (Crash).
func (f *Fleet) Memnode(m int) *memnode.Node { return f.memnodes[m] }

// EngineOf returns the engine currently serving the tenant's queue sets.
func (f *Fleet) EngineOf(tenant int) (*spot.Engine, bool) {
	t, ok := f.tenants[tenant]
	if !ok {
		return nil, false
	}
	return f.engines[t.engine].eng, true
}

// Tenant returns a registered tenant's handle.
func (f *Fleet) Tenant(id int) (*Tenant, bool) {
	t, ok := f.tenants[id]
	return t, ok
}

// nextPSNPair hands out a fresh PSN pair for one QP connection.
func (f *Fleet) nextPSNPair() (uint32, uint32) {
	a := f.psn
	f.psn += 2
	return a, a + 1
}

// connect wires one engine-side QP (on the engine's shared CQ) to a fresh
// passive QP on peer.
func (f *Fleet) connect(fe *fleetEngine, peer *rdma.NIC) *rdma.QP {
	ePSN, pPSN := f.nextPSNPair()
	eQP := fe.nic.CreateQP(fe.eng.CQ(), rdma.NewCQ(), ePSN)
	pQP := peer.CreateQP(rdma.NewCQ(), rdma.NewCQ(), pPSN)
	eQP.Connect(rdma.RemoteEndpoint{QPN: pQP.QPN(), MAC: peer.MAC(), IP: peer.IP()}, pPSN)
	pQP.Connect(rdma.RemoteEndpoint{QPN: eQP.QPN(), MAC: fe.nic.MAC(), IP: fe.nic.IP()}, ePSN)
	return eQP
}

// AddTenant provisions tenant id end to end: directory placement, region
// allocation on the home memnodes, a compute node with its client library,
// QP wiring to the ring-assigned engine, and engine registration with the
// fleet's default QoS. Tenant ids double as instance ids, so they must be
// unique.
func (f *Fleet) AddTenant(id int) (*Tenant, error) {
	if _, dup := f.tenants[id]; dup {
		return nil, fmt.Errorf("system: tenant %d already exists", id)
	}
	ext, err := f.dir.Place(id, f.cfg.StripesPerTenant, uint64(f.cfg.StripeSize))
	if err != nil {
		return nil, err
	}

	t := &Tenant{ID: id, extents: ext, qos: f.cfg.DefaultQoS}
	t.nic = rdma.NewNIC(f.Fabric, tenantMAC(id), tenantIP(id), f.cfg.NIC)
	t.Client, err = core.NewClient(t.nic, core.ClientConfig{
		Threads: f.cfg.Threads,
		Layout:  f.cfg.Layout,
		BaseVA:  0x10_0000,
	})
	if err != nil {
		t.nic.Close()
		return nil, err
	}

	// Allocate each stripe on its home memnode and relabel the node-local
	// region as the client-facing stripe id: the engine's per-replica
	// translation tables key on the client-facing id, so each replica
	// descriptor carries {ID: stripe, node's Base/RKey} and translation is
	// the identity mapping. repNodes assigns one replica slot per distinct
	// memnode the tenant touches, in first-use order.
	slotOf := make(map[int]int)
	t.homes = make([][]int, len(ext))
	for _, e := range ext {
		node := f.memnodes[e.Memnode]
		info, aerr := node.AllocRegion(e.NodeRegionID, int(e.Size))
		if aerr != nil {
			t.nic.Close()
			return nil, aerr
		}
		stripe := core.RegionInfo{ID: e.Stripe, Base: info.Base, Size: info.Size, RKey: info.RKey}
		t.Client.RegisterRegion(stripe)
		slot, ok := slotOf[e.Memnode]
		if !ok {
			slot = len(t.repNodes)
			slotOf[e.Memnode] = slot
			t.repNodes = append(t.repNodes, e.Memnode)
			t.reps = append(t.reps, spot.PoolReplica{})
		}
		t.reps[slot].Regions = append(t.reps[slot].Regions, stripe)
		t.homes[e.Stripe] = []int{slot}
	}
	t.inst = t.Client.Describe(id)

	owner, ok := f.ring.Owner(uint64(id))
	if !ok {
		t.nic.Close()
		return nil, fmt.Errorf("system: no live engine to place tenant %d", id)
	}
	t.engine = owner
	if err := f.registerTenant(t, false); err != nil {
		t.nic.Close()
		return nil, err
	}
	f.tenants[id] = t
	return t, nil
}

// registerTenant wires fresh QPs from the tenant's current engine and
// registers the instance there — AddInstancePlaced on first placement,
// AdoptInstancePlaced (red-block replay) on migration.
func (f *Fleet) registerTenant(t *Tenant, adopt bool) error {
	fe := f.engines[t.engine]
	computeQP := f.connect(fe, t.nic)
	reps := make([]spot.PoolReplica, len(t.reps))
	for slot, node := range t.repNodes {
		reps[slot] = spot.PoolReplica{
			QP:      f.connect(fe, f.memnodes[node].NIC()),
			Regions: t.reps[slot].Regions,
		}
	}
	var err error
	if adopt {
		err = fe.eng.AdoptInstancePlaced(t.inst, computeQP, reps, t.homes)
	} else {
		err = fe.eng.AddInstancePlaced(t.inst, computeQP, reps, t.homes)
	}
	if err != nil {
		return err
	}
	fe.eng.SetTenantQoS(t.ID, t.qos)
	return nil
}

// SetTenantQoS retunes one tenant's rate limit and DRR quantum on its
// current engine, effective from the next serve round.
func (f *Fleet) SetTenantQoS(tenant int, q spot.TenantQoS) error {
	t, ok := f.tenants[tenant]
	if !ok {
		return fmt.Errorf("system: unknown tenant %d", tenant)
	}
	t.qos = q
	if !f.engines[t.engine].eng.SetTenantQoS(tenant, q) {
		return fmt.Errorf("system: tenant %d not registered on engine %d", tenant, t.engine)
	}
	return nil
}

// MigrateTenant moves one tenant's queue sets to the target engine using
// the live-migration protocol: RemoveInstance quiesces the source mid-round
// boundary and stops all its RDMA toward the tenant, then the target adopts
// from the durable red blocks. In-flight client requests complete on the
// target; nothing is re-executed (the red block's single-write publish is
// the exactly-once anchor, exactly as in an HA takeover).
func (f *Fleet) MigrateTenant(tenant, target int) error {
	t, ok := f.tenants[tenant]
	if !ok {
		return fmt.Errorf("system: unknown tenant %d", tenant)
	}
	if target < 0 || target >= len(f.engines) || f.engines[target].dead {
		return fmt.Errorf("system: migration target engine %d not live", target)
	}
	if target == t.engine {
		return nil
	}
	src := f.engines[t.engine]
	if !src.dead {
		src.eng.RemoveInstance(tenant)
	}
	t.engine = target
	return f.registerTenant(t, true)
}

// AddEngine grows the fleet by one engine and rebalances: every tenant
// whose ring owner moved onto the new engine migrates to it. Returns the
// new engine's id and how many tenants moved.
func (f *Fleet) AddEngine() (int, int, error) {
	id := f.addEngineSlot()
	moved, err := f.rebalance()
	return id, moved, err
}

// FailEngine kills engine id abruptly — the spot-preemption event at fleet
// scale — and re-homes every tenant it was serving to that tenant's new
// ring owner via red-block adoption. Returns how many tenants moved.
func (f *Fleet) FailEngine(id int) (int, error) {
	if id < 0 || id >= len(f.engines) || f.engines[id].dead {
		return 0, fmt.Errorf("system: engine %d not live", id)
	}
	fe := f.engines[id]
	fe.dead = true
	f.ring.Remove(id)
	fe.eng.Stop()
	return f.rebalance()
}

// rebalance migrates every tenant whose current engine differs from its
// ring owner.
func (f *Fleet) rebalance() (int, error) {
	moved := 0
	for id, t := range f.tenants {
		owner, ok := f.ring.Owner(uint64(id))
		if !ok {
			return moved, fmt.Errorf("system: no live engine for tenant %d", id)
		}
		if owner == t.engine {
			continue
		}
		if err := f.MigrateTenant(id, owner); err != nil {
			return moved, err
		}
		moved++
	}
	return moved, nil
}

// Close stops every engine and closes every NIC and the fabric.
func (f *Fleet) Close() {
	for _, fe := range f.engines {
		if !fe.dead {
			fe.eng.Stop()
		}
	}
	for _, fe := range f.engines {
		fe.nic.Close()
	}
	for _, t := range f.tenants {
		t.nic.Close()
	}
	for _, m := range f.memnodes {
		m.Close()
	}
	f.Fabric.Close()
}
