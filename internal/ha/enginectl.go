package ha

import (
	"errors"
	"sync"

	"cowbird/internal/core"
	"cowbird/internal/ctl"
	"cowbird/internal/engine/spot"
	"cowbird/internal/rdma"
	"cowbird/internal/telemetry"
	"cowbird/internal/wire"
)

// EngineControl is the engine-process side of the control plane
// (cmd/cowbird-engine), factored out of the command so the standby path is
// testable in-process. It serves the same Phase I ops as before —
// add_peer_addr and setup — plus, in standby mode, the promote op that
// triggers the takeover.
//
// Active mode:  setup wires QPs and hands the instance to the (running)
// engine immediately.
// Standby mode: setup wires QPs but only registers the instance with a
// Standby; the engine stays cold until a promote request arrives (sent by
// whoever observed the primary's lease expire — typically the compute node
// reacting to Monitor.OnDeath).
type EngineControl struct {
	eng     *spot.Engine
	bridge  *rdma.UDPBridge
	nic     *rdma.NIC
	mac     wire.MAC
	ip      wire.IPv4Addr
	standby *Standby // nil in active mode
	reg     *telemetry.Registry

	mu      sync.Mutex
	nextPSN uint32
}

// NewEngineControl builds the handler. In active mode the caller runs the
// engine; in standby mode the engine must be left cold — promotion starts
// it.
func NewEngineControl(eng *spot.Engine, bridge *rdma.UDPBridge, nic *rdma.NIC, mac wire.MAC, ip wire.IPv4Addr, standby bool) *EngineControl {
	ec := &EngineControl{eng: eng, bridge: bridge, nic: nic, mac: mac, ip: ip, nextPSN: 0x5000}
	if standby {
		ec.standby = NewStandby(eng)
	}
	return ec
}

// Standby returns the standby wrapper (nil in active mode).
func (ec *EngineControl) Standby() *Standby { return ec.standby }

// SetTelemetry installs the registry the "telemetry" control op snapshots.
// Call before serving; a nil registry (the default) makes the op report that
// telemetry is disabled.
func (ec *EngineControl) SetTelemetry(reg *telemetry.Registry) { ec.reg = reg }

// Handle serves one control request; pass it to ctl.Serve.
func (ec *EngineControl) Handle(req ctl.Request) ctl.Response {
	ec.mu.Lock()
	defer ec.mu.Unlock()
	switch req.Op {
	case "add_peer_addr":
		if req.Remote == nil || req.PeerAddr == "" {
			return ctl.Response{Err: "add_peer_addr needs remote MAC and addr"}
		}
		if err := ec.bridge.AddPeer(req.Remote.MAC, req.PeerAddr); err != nil {
			return ctl.Response{Err: err.Error()}
		}
		return ctl.Response{}
	case "setup":
		if ec.eng.Fenced() {
			return ctl.Response{Err: "setup: engine fenced (superseded by a newer epoch)", Fenced: true}
		}
		if req.Instance == nil || req.Compute == nil || req.Pool == nil {
			return ctl.Response{Err: "setup needs instance, compute, and pool endpoints"}
		}
		compPSN, poolPSN := ec.nextPSN, ec.nextPSN+0x1000
		ec.nextPSN += 0x2000
		unused := rdma.NewCQ()
		eComp := ec.nic.CreateQP(ec.eng.CQ(), unused, compPSN)
		eMem := ec.nic.CreateQP(ec.eng.CQ(), unused, poolPSN)
		eComp.Connect(rdma.RemoteEndpoint{
			QPN: req.Compute.QPN, MAC: req.Compute.MAC, IP: req.Compute.IP,
		}, req.Compute.FirstPSN)
		eMem.Connect(rdma.RemoteEndpoint{
			QPN: req.Pool.QPN, MAC: req.Pool.MAC, IP: req.Pool.IP,
		}, req.Pool.FirstPSN)
		if ec.standby != nil {
			if err := ec.standby.Register(req.Instance, eComp, eMem); err != nil {
				return ctl.Response{Err: err.Error()}
			}
		} else {
			ec.eng.AddInstance(req.Instance, eComp, eMem)
		}
		return ctl.Response{
			EngineToCompute: &ctl.QPEndpoint{QPN: eComp.QPN(), MAC: ec.mac, IP: ec.ip, FirstPSN: compPSN},
			EngineToPool:    &ctl.QPEndpoint{QPN: eMem.QPN(), MAC: ec.mac, IP: ec.ip, FirstPSN: poolPSN},
		}
	case "promote":
		if ec.standby == nil {
			return ctl.Response{Err: "promote: engine is not a standby"}
		}
		if ec.eng.Fenced() {
			return ctl.Response{Err: "promote: engine fenced (superseded by a newer epoch)", Fenced: true}
		}
		if err := ec.standby.Promote(); err != nil {
			// A promotion raced by a newer epoch is a demotion of this
			// standby, not a transient fault: mark it so CallRetry fails fast.
			return ctl.Response{Err: err.Error(), Fenced: errors.Is(err, core.ErrFenced)}
		}
		return ctl.Response{}
	case "telemetry":
		if ec.reg == nil {
			return ctl.Response{Err: "telemetry: not enabled on this engine (start with -telemetry)"}
		}
		snap := ec.reg.Snapshot()
		return ctl.Response{Telemetry: &snap}
	}
	return ctl.Response{Err: "unknown op " + req.Op}
}
