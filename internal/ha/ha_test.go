package ha

import (
	"errors"
	"testing"
	"time"

	"cowbird/internal/core"
	"cowbird/internal/engine/spot"
	"cowbird/internal/memnode"
	"cowbird/internal/rdma"
	"cowbird/internal/rings"
	"cowbird/internal/wire"
)

// rig is an in-process failover deployment: one compute node and one memory
// pool served by a primary spot engine, with a standby engine pre-wired
// (its own NIC and QP pairs) and a lease monitor on the compute node.
type rig struct {
	f       *rdma.Fabric
	client  *core.Client
	pool    *memnode.Node
	primary *spot.Engine
	standby *Standby
	monitor *Monitor
}

// testTimings returns engine/monitor configs with a lease timeout generous
// enough that a loaded -race run never false-positives, while keeping a
// whole failover under ~100ms.
func testTimings() (spot.Config, MonitorConfig) {
	ecfg := spot.DefaultConfig()
	ecfg.ProbeInterval = 5 * time.Microsecond
	ecfg.HeartbeatInterval = 1 * time.Millisecond
	mcfg := MonitorConfig{Interval: 2 * time.Millisecond, LeaseTimeout: 60 * time.Millisecond}
	return ecfg, mcfg
}

// wirePair connects an engine to the compute node and pool with a fresh QP
// pair, returning the engine-side QPs.
func wirePair(eng *spot.Engine, computeNIC *rdma.NIC, pool *memnode.Node, basePSN uint32) (*rdma.QP, *rdma.QP) {
	unused := rdma.NewCQ()
	eComp := eng.NIC().CreateQP(eng.CQ(), unused, basePSN)
	cQP := computeNIC.CreateQP(rdma.NewCQ(), rdma.NewCQ(), basePSN+1)
	eComp.Connect(rdma.RemoteEndpoint{QPN: cQP.QPN(), MAC: computeNIC.MAC(), IP: computeNIC.IP()}, basePSN+1)
	cQP.Connect(rdma.RemoteEndpoint{QPN: eComp.QPN(), MAC: eng.NIC().MAC(), IP: eng.NIC().IP()}, basePSN)

	eMem := eng.NIC().CreateQP(eng.CQ(), unused, basePSN+2)
	mQP := pool.NIC().CreateQP(rdma.NewCQ(), rdma.NewCQ(), basePSN+3)
	eMem.Connect(rdma.RemoteEndpoint{QPN: mQP.QPN(), MAC: pool.NIC().MAC(), IP: pool.NIC().IP()}, basePSN+3)
	mQP.Connect(rdma.RemoteEndpoint{QPN: eMem.QPN(), MAC: eng.NIC().MAC(), IP: eng.NIC().IP()}, basePSN+2)
	return eComp, eMem
}

// buildRig assembles the deployment. autoPromote hangs standby promotion on
// the monitor's death callback, the production wiring.
func buildRig(t *testing.T, ecfg spot.Config, mcfg MonitorConfig, autoPromote bool) *rig {
	t.Helper()
	f := rdma.NewFabric()
	t.Cleanup(f.Close)

	computeNIC := rdma.NewNIC(f, wire.MAC{2, 0xFA, 0, 0, 0, 1}, wire.IPv4Addr{10, 8, 0, 1}, rdma.DefaultConfig())
	t.Cleanup(computeNIC.Close)
	pool := memnode.New(f, wire.MAC{2, 0xFA, 0, 0, 0, 2}, wire.IPv4Addr{10, 8, 0, 2}, rdma.DefaultConfig())
	t.Cleanup(pool.Close)
	primaryNIC := rdma.NewNIC(f, wire.MAC{2, 0xFA, 0, 0, 0, 3}, wire.IPv4Addr{10, 8, 0, 3}, rdma.DefaultConfig())
	t.Cleanup(primaryNIC.Close)
	standbyNIC := rdma.NewNIC(f, wire.MAC{2, 0xFA, 0, 0, 0, 4}, wire.IPv4Addr{10, 8, 0, 4}, rdma.DefaultConfig())
	t.Cleanup(standbyNIC.Close)

	client, err := core.NewClient(computeNIC, core.ClientConfig{
		Threads: 1,
		Layout:  rings.Layout{MetaEntries: 64, ReqDataBytes: 32 << 10, RespDataBytes: 32 << 10},
		BaseVA:  0x10_0000,
	})
	if err != nil {
		t.Fatal(err)
	}
	region, err := pool.AllocRegion(0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	client.RegisterRegion(region)

	primary := spot.New(primaryNIC, ecfg)
	pComp, pMem := wirePair(primary, computeNIC, pool, 1000)
	primary.AddInstance(client.Describe(1), pComp, pMem)
	t.Cleanup(primary.Stop)

	standbyEng := spot.New(standbyNIC, ecfg)
	sComp, sMem := wirePair(standbyEng, computeNIC, pool, 2000)
	st := NewStandby(standbyEng)
	if err := st.Register(client.Describe(1), sComp, sMem); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(standbyEng.Stop)

	mon := NewMonitor(client, mcfg)
	if autoPromote {
		mon.OnDeath(func() { _ = st.Promote() })
	}
	return &rig{f: f, client: client, pool: pool, primary: primary, standby: st, monitor: mon}
}

func waitFor(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestLeaseLifecycle walks the full arc: healthy lease → preemption →
// detection → automatic standby promotion → lease recovery, with the
// workload succeeding on both sides of the failover.
func TestLeaseLifecycle(t *testing.T) {
	ecfg, mcfg := testTimings()
	r := buildRig(t, ecfg, mcfg, true)
	r.primary.Run()
	r.monitor.Start()
	t.Cleanup(r.monitor.Stop)

	th, _ := r.client.Thread(0)
	if err := th.WriteSync(0, []byte("before-failover"), 128, 10*time.Second); err != nil {
		t.Fatalf("write on primary: %v", err)
	}
	time.Sleep(5 * mcfg.Interval)
	if !r.monitor.Alive() || r.monitor.Deaths() != 0 {
		t.Fatalf("healthy engine declared dead (alive=%v deaths=%d)", r.monitor.Alive(), r.monitor.Deaths())
	}

	r.primary.Preempt()
	waitFor(t, "death detection", 10*time.Second, func() bool { return r.monitor.Deaths() == 1 })
	waitFor(t, "standby promotion", 10*time.Second, r.standby.Promoted)
	waitFor(t, "lease recovery", 10*time.Second, r.monitor.Alive)

	if err := th.WriteSync(0, []byte("after-failover!"), 256, 10*time.Second); err != nil {
		t.Fatalf("write on standby: %v", err)
	}
	got, err := r.pool.Peek(0, 128, 15)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "before-failover" {
		t.Fatalf("pre-failover write lost: %q", got)
	}
}

// TestWaitErrSurfacesEngineDead checks the core satellite: a poll group
// blocked on a dead engine returns ErrEngineDead instead of spinning, and
// completes normally after a manual promotion.
func TestWaitErrSurfacesEngineDead(t *testing.T) {
	ecfg, mcfg := testTimings()
	r := buildRig(t, ecfg, mcfg, false) // no auto-promotion
	r.primary.Run()
	r.monitor.Start()
	t.Cleanup(r.monitor.Stop)

	th, _ := r.client.Thread(0)
	if err := th.WriteSync(0, []byte{0xAB}, 64, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	r.primary.Preempt()
	waitFor(t, "death detection", 10*time.Second, func() bool { return !r.monitor.Alive() })

	dest := make([]byte, 1)
	id, err := th.AsyncRead(0, 64, dest)
	if err != nil {
		t.Fatal(err)
	}
	g := th.PollCreate()
	if err := g.Add(id); err != nil {
		t.Fatal(err)
	}
	if _, err := g.WaitErr(1, 10*time.Second); !errors.Is(err, core.ErrEngineDead) {
		t.Fatalf("WaitErr = %v, want ErrEngineDead", err)
	}

	if err := r.standby.Promote(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "completion after promotion", 10*time.Second, func() bool {
		ids, err := g.WaitErr(1, 100*time.Millisecond)
		if err != nil {
			return false
		}
		return len(ids) == 1 && ids[0] == id
	})
	if dest[0] != 0xAB {
		t.Fatalf("read after failover = %#x, want 0xAB", dest[0])
	}
}

// TestPromoteIdempotent: repeated/late promotion must collapse to one
// takeover, and late registration must be refused.
func TestPromoteIdempotent(t *testing.T) {
	ecfg, mcfg := testTimings()
	r := buildRig(t, ecfg, mcfg, false)
	r.primary.Run()
	_ = mcfg

	r.primary.Preempt()
	if err := r.standby.Promote(); err != nil {
		t.Fatal(err)
	}
	if err := r.standby.Promote(); err != nil {
		t.Fatalf("second Promote: %v", err)
	}
	if !r.standby.Promoted() {
		t.Fatal("Promoted() false after Promote")
	}
	if err := r.standby.Register(nil, nil, nil); err == nil {
		t.Fatal("Register after promotion succeeded")
	}
}

// TestMonitorDetectsNeverStartedEngine: the lease clock starts at the first
// sample, so an engine that dies before its first heartbeat (or never
// existed) is still detected.
func TestMonitorDetectsNeverStartedEngine(t *testing.T) {
	ecfg, mcfg := testTimings()
	r := buildRig(t, ecfg, mcfg, false)
	// Primary never Run: no heartbeat will ever arrive.
	r.monitor.Start()
	t.Cleanup(r.monitor.Stop)
	waitFor(t, "death of silent engine", 10*time.Second, func() bool { return !r.monitor.Alive() })
}
