// Package ha adds engine failover and spot-preemption tolerance to Cowbird.
//
// The paper's economic argument for Cowbird-Spot is that the offload engine
// can run on a revocable spot VM (Table 1: 68–90% cheaper than on-demand);
// ha supplies the piece that makes revocation survivable. The design leans
// on the property that makes it cheap (§4.2): every byte of durable
// protocol state — ring tails, heads, per-type progress counters — lives in
// compute-node memory, updated by the engine in single RDMA writes. The
// engine itself is pure soft state, so a standby can reconstruct everything
// by reading the bookkeeping block back and resume exactly where the dead
// engine stopped.
//
// Three pieces:
//
//   - Monitor (this file): a lease/heartbeat failure detector. The engine
//     bumps a heartbeat counter in the red bookkeeping half with every
//     pointer-update write (renewing its lease for free under load) and
//     with periodic heartbeat-only writes when idle. The compute node
//     samples the counter with plain local loads; when it stalls past the
//     lease timeout the engine is declared dead.
//   - Standby (standby.go): the takeover protocol. A standby engine holds
//     pre-wired QPs; on promotion it reads the durable red state over RDMA
//     (spot.Engine.AdoptInstance) and resumes serving. Exactly-once replay
//     follows from red-block atomicity — see AdoptInstance's comment.
//   - EngineControl (enginectl.go): the control-plane handler that lets
//     cmd/cowbird-engine run as either the active engine or a promotable
//     standby in multi-process deployments.
package ha

import (
	"fmt"
	"sync"
	"time"

	"cowbird/internal/core"
	"cowbird/internal/telemetry"
)

// MonitorConfig tunes the failure detector.
type MonitorConfig struct {
	// Interval is the sampling period for the heartbeat counters.
	Interval time.Duration
	// LeaseTimeout is how long a heartbeat counter may stall before the
	// engine is declared dead. It should be several engine heartbeat
	// intervals, or sampling noise produces false revocations.
	LeaseTimeout time.Duration
}

// DefaultMonitorConfig returns a detector matched to the spot engine's
// default 500µs heartbeat interval.
func DefaultMonitorConfig() MonitorConfig {
	return MonitorConfig{Interval: 200 * time.Microsecond, LeaseTimeout: 5 * time.Millisecond}
}

// queueLease tracks one queue set's heartbeat counter.
type queueLease struct {
	last    uint64    // last sampled heartbeat value
	changed time.Time // when it last advanced (or was first sampled)
}

// Monitor is the compute-side lease monitor: it samples every queue set's
// heartbeat counter (a local memory load — no network traffic) and declares
// the engine dead when any queue's counter stalls past the lease timeout.
// The clock for each queue starts at the monitor's first sample, so start
// the monitor only once an engine is attached (after Phase I setup): an
// engine that dies before its very first heartbeat is still detected.
// Liveness recovers automatically when heartbeats resume — i.e. when a
// standby's first red write lands.
type Monitor struct {
	c   *core.Client
	cfg MonitorConfig

	mu      sync.Mutex
	leases  []queueLease
	alive   bool
	deaths  int
	onDeath []func()

	stop chan struct{}
	done chan struct{}
}

// NewMonitor builds a monitor over every thread of c and installs itself as
// the client's liveness check, so PollGroup.WaitErr surfaces ErrEngineDead
// once the lease trips. Call Start to begin sampling.
func NewMonitor(c *core.Client, cfg MonitorConfig) *Monitor {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultMonitorConfig().Interval
	}
	if cfg.LeaseTimeout <= 0 {
		cfg.LeaseTimeout = DefaultMonitorConfig().LeaseTimeout
	}
	m := &Monitor{
		c:      c,
		cfg:    cfg,
		leases: make([]queueLease, c.Threads()),
		alive:  true,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	c.SetLiveness(m.Alive)
	return m
}

// OnDeath registers a callback invoked (from the monitor goroutine) each
// time the engine transitions alive→dead. internal/ha users hang standby
// promotion here.
func (m *Monitor) OnDeath(fn func()) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.onDeath = append(m.onDeath, fn)
}

// Alive reports whether the engine's lease is current.
func (m *Monitor) Alive() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.alive
}

// Deaths counts alive→dead transitions observed so far.
func (m *Monitor) Deaths() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.deaths
}

// RegisterMetrics exports the monitor's lease state on reg:
// cowbird_lease_age_ns is the age of the stalest queue's heartbeat — the
// quantity the detector compares against LeaseTimeout, so a dashboard shows
// how close the engine is to being declared dead — plus a
// cowbird_lease_age_ns_queue<i> gauge per queue set. Ages read as zero
// until the first sample.
func (m *Monitor) RegisterMetrics(reg *telemetry.Registry) {
	for i := range m.leases {
		qi := i
		reg.Gauge(fmt.Sprintf("cowbird_lease_age_ns_queue%d", qi), func() int64 { return m.leaseAge(qi) })
	}
	reg.Gauge("cowbird_lease_age_ns", m.maxLeaseAge)
}

// leaseAge returns how long queue i's heartbeat counter has been stalled.
func (m *Monitor) leaseAge(i int) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if i >= len(m.leases) || m.leases[i].changed.IsZero() {
		return 0
	}
	return time.Since(m.leases[i].changed).Nanoseconds()
}

// maxLeaseAge returns the stalest queue's heartbeat age.
func (m *Monitor) maxLeaseAge() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var oldest int64
	for _, l := range m.leases {
		if l.changed.IsZero() {
			continue
		}
		if age := time.Since(l.changed).Nanoseconds(); age > oldest {
			oldest = age
		}
	}
	return oldest
}

// Start launches the sampling loop. Stop it with Stop.
func (m *Monitor) Start() {
	go m.loop()
}

// Stop halts the sampling loop.
func (m *Monitor) Stop() {
	select {
	case <-m.stop:
	default:
		close(m.stop)
	}
	<-m.done
}

func (m *Monitor) loop() {
	defer close(m.done)
	ticker := time.NewTicker(m.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-m.stop:
			return
		case now := <-ticker.C:
			for _, fn := range m.sample(now) {
				fn()
			}
		}
	}
}

// sample takes one reading of every queue's heartbeat and updates the lease
// state, returning the death callbacks to run (outside the lock) if this
// sample tripped the detector.
func (m *Monitor) sample(now time.Time) []func() {
	m.mu.Lock()
	defer m.mu.Unlock()
	anyStalled := false
	for i := range m.leases {
		t, err := m.c.Thread(i)
		if err != nil {
			continue
		}
		hb := t.QueueSet().Heartbeat()
		l := &m.leases[i]
		if l.changed.IsZero() || hb != l.last {
			l.last = hb
			l.changed = now
			continue
		}
		if now.Sub(l.changed) > m.cfg.LeaseTimeout {
			anyStalled = true
		}
	}
	switch {
	case m.alive && anyStalled:
		m.alive = false
		m.deaths++
		return append([]func(){}, m.onDeath...)
	case !m.alive && !anyStalled:
		// Heartbeats resumed on every stalled queue: a standby took over.
		m.alive = true
	}
	return nil
}
