package ha

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"cowbird/internal/core"
	"cowbird/internal/engine/spot"
	"cowbird/internal/memnode"
	"cowbird/internal/rdma"
	"cowbird/internal/rings"
	"cowbird/internal/wire"
)

// fencedRig is the split-brain deployment (DESIGN.md §14): one compute node,
// TWO pool replicas, a primary engine bound at fencing epoch 1, a standby
// registered with every fencer, and a Partition installed as the fabric's
// loss predicate so tests can isolate the primary without killing it.
type fencedRig struct {
	f       *rdma.Fabric
	part    *rdma.Partition
	client  *core.Client
	pools   [2]*memnode.Node
	primary *spot.Engine
	standby *Standby
	monitor *Monitor

	computeMAC wire.MAC
	primaryMAC wire.MAC
}

// buildFencedRig wires the deployment above. The primary's QPs get a retry
// budget far longer than any partition a test installs, so its in-flight
// writes survive as Go-Back-N retransmissions and are still flying when the
// partition heals — the zombie scenario, not the crash scenario.
func buildFencedRig(t *testing.T) *fencedRig {
	t.Helper()
	ecfg, _ := testTimings()
	f := rdma.NewFabric()
	t.Cleanup(f.Close)
	part := rdma.NewPartition()
	f.SetLossFn(part.Drops)

	computeNIC := rdma.NewNIC(f, wire.MAC{2, 0xFB, 0, 0, 0, 1}, wire.IPv4Addr{10, 9, 0, 1}, rdma.DefaultConfig())
	t.Cleanup(computeNIC.Close)
	primaryNIC := rdma.NewNIC(f, wire.MAC{2, 0xFB, 0, 0, 0, 4}, wire.IPv4Addr{10, 9, 0, 4}, rdma.DefaultConfig())
	t.Cleanup(primaryNIC.Close)
	standbyNIC := rdma.NewNIC(f, wire.MAC{2, 0xFB, 0, 0, 0, 5}, wire.IPv4Addr{10, 9, 0, 5}, rdma.DefaultConfig())
	t.Cleanup(standbyNIC.Close)

	client, err := core.NewClient(computeNIC, core.ClientConfig{
		Threads: 1,
		Layout:  rings.Layout{MetaEntries: 64, ReqDataBytes: 32 << 10, RespDataBytes: 32 << 10},
		BaseVA:  0x10_0000,
	})
	if err != nil {
		t.Fatal(err)
	}

	r := &fencedRig{f: f, part: part, client: client, computeMAC: computeNIC.MAC(), primaryMAC: primaryNIC.MAC()}
	primary := spot.New(primaryNIC, ecfg)
	primary.SetFenceEpoch(1)
	standbyEng := spot.New(standbyNIC, ecfg)
	st := NewStandby(standbyEng)

	connect := func(eng *spot.Engine, peer *rdma.NIC, engPSN, peerPSN uint32) *rdma.QP {
		eQP := eng.NIC().CreateQP(eng.CQ(), rdma.NewCQ(), engPSN)
		pQP := peer.CreateQP(rdma.NewCQ(), rdma.NewCQ(), peerPSN)
		eQP.Connect(rdma.RemoteEndpoint{QPN: pQP.QPN(), MAC: peer.MAC(), IP: peer.IP()}, peerPSN)
		pQP.Connect(rdma.RemoteEndpoint{QPN: eQP.QPN(), MAC: eng.NIC().MAC(), IP: eng.NIC().IP()}, engPSN)
		return eQP
	}

	var pReps, sReps []spot.PoolReplica
	for i := 0; i < 2; i++ {
		pool := memnode.New(f, wire.MAC{2, 0xFB, 0, 0, 0, byte(2 + i)}, wire.IPv4Addr{10, 9, 0, byte(2 + i)}, rdma.DefaultConfig())
		t.Cleanup(pool.Close)
		if i > 0 {
			// Skew replica 1's VA space so region 0 sits at a different base:
			// scrub and repair must translate per replica, not reuse addresses.
			if _, err := pool.AllocRegion(99, 8192); err != nil {
				t.Fatal(err)
			}
		}
		region, err := pool.AllocRegion(0, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			client.RegisterRegion(region)
		}
		pQP := connect(primary, pool.NIC(), uint32(3000+i*200), uint32(3100+i*200))
		pQP.SetRetryPolicy(time.Millisecond, 30_000)
		pReps = append(pReps, spot.PoolReplica{QP: pQP, Regions: []core.RegionInfo{region}})
		sReps = append(sReps, spot.PoolReplica{QP: connect(standbyEng, pool.NIC(), uint32(4000+i*200), uint32(4100+i*200)), Regions: []core.RegionInfo{region}})
		r.pools[i] = pool
		st.RegisterFencer(pool)
	}
	st.RegisterFencer(client)

	// Bind at epoch 1: from here on only epoch-holders land writes anywhere.
	for _, pool := range r.pools {
		if err := pool.Fence(1); err != nil {
			t.Fatal(err)
		}
	}
	if err := client.Fence(1); err != nil {
		t.Fatal(err)
	}

	pComp := connect(primary, computeNIC, 1000, 1100)
	pComp.SetRetryPolicy(time.Millisecond, 30_000)
	primary.AddInstanceReplicated(client.Describe(1), pComp, pReps)
	t.Cleanup(primary.Stop)

	if err := st.RegisterReplicated(client.Describe(1), connect(standbyEng, computeNIC, 2000, 2100), sReps); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(standbyEng.Stop)

	mon := NewMonitor(client, MonitorConfig{Interval: 2 * time.Millisecond, LeaseTimeout: 30 * time.Millisecond})
	mon.OnDeath(func() { _ = st.Promote() })
	r.primary, r.standby, r.monitor = primary, st, mon
	return r
}

// isolatePrimary severs the primary from the compute node and both pools —
// both directions, every peer — without stopping its engine: the canonical
// split-brain. The primary keeps serving into the void.
func (r *fencedRig) isolatePrimary() {
	r.part.Block(r.primaryMAC, r.computeMAC)
	for _, p := range r.pools {
		r.part.Block(r.primaryMAC, p.NIC().MAC())
	}
}

// TestZombiePrimaryFenced is the split-brain regression the tentpole exists
// for: partition the primary (do NOT kill it), let the monitor promote the
// standby, heal the partition, and prove the write-durability invariant —
// every acknowledged write survives at every replica, no byte from the
// fenced writer ever lands, and the zombie demotes itself the moment its
// first retransmission reaches a fenced peer.
func TestZombiePrimaryFenced(t *testing.T) {
	r := buildFencedRig(t)
	r.primary.Run()
	r.monitor.Start()
	t.Cleanup(r.monitor.Stop)

	th, err := r.client.Thread(0)
	if err != nil {
		t.Fatal(err)
	}
	before := bytes.Repeat([]byte{0xB1}, 64)
	if err := th.WriteSync(0, before, 128, 10*time.Second); err != nil {
		t.Fatalf("write on primary: %v", err)
	}

	// Split brain: the primary is alive behind the partition, its heartbeat
	// and probe WRs retransmitting into the void at stale epoch 1.
	r.isolatePrimary()

	// A write issued during the partition: the zombie can never fetch it, so
	// it must complete — exactly once — on the promoted standby.
	during := bytes.Repeat([]byte{0xD2}, 64)
	inflight, err := th.AsyncWrite(0, during, 4096)
	if err != nil {
		t.Fatal(err)
	}
	g := th.PollCreate()
	if err := g.Add(inflight); err != nil {
		t.Fatal(err)
	}

	waitFor(t, "death detection", 10*time.Second, func() bool { return r.monitor.Deaths() == 1 })
	waitFor(t, "standby promotion", 10*time.Second, r.standby.Promoted)

	// Promotion bumped the epoch at EVERY replica and at the compute node
	// before the standby served a single request.
	if got := r.standby.Epoch(); got != 2 {
		t.Fatalf("standby epoch %d after promotion, want 2", got)
	}
	for i, pool := range r.pools {
		if got := pool.FenceEpoch(); got != 2 {
			t.Fatalf("pool %d epoch %d after promotion, want 2", i, got)
		}
	}
	if got := r.client.FenceEpoch(); got != 2 {
		t.Fatalf("client epoch %d after promotion, want 2", got)
	}

	waitFor(t, "in-flight write completion on standby", 10*time.Second, func() bool {
		ids, err := g.WaitErr(1, 20*time.Millisecond)
		return err == nil && len(ids) == 1 && ids[0] == inflight
	})
	waitFor(t, "lease recovery", 10*time.Second, r.monitor.Alive)

	// The zombie cannot have learned of its demotion yet: no fenced NAK can
	// cross the partition.
	if r.primary.Fenced() {
		t.Fatal("primary fenced before the partition healed")
	}

	// Heal. The zombie's retransmissions now reach epoch-2 floors, NAK with
	// the stale-epoch syndrome, and demote it — detection needs no timeout,
	// no monitor, no cooperation from the zombie.
	r.part.HealAll()
	waitFor(t, "zombie self-demotion", 10*time.Second, r.primary.Fenced)

	after := bytes.Repeat([]byte{0xA3}, 64)
	if err := th.WriteSync(0, after, 8192, 10*time.Second); err != nil {
		t.Fatalf("write on standby after heal: %v", err)
	}

	// Write-durability invariant: every acknowledged write present at every
	// replica, bit-exact.
	for i, pool := range r.pools {
		for _, w := range []struct {
			off  uint64
			want []byte
		}{{128, before}, {4096, during}, {8192, after}} {
			got, err := pool.Peek(0, w.off, len(w.want))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, w.want) {
				t.Fatalf("pool %d @%d: acknowledged write lost or overwritten (got %x... want %x...)", i, w.off, got[:4], w.want[:4])
			}
		}
	}

	// A scrub pass over the healed deployment finds zero divergence — the
	// fenced writer never landed a byte anywhere — and the replicas are
	// byte-identical end to end.
	if err := r.standby.Engine().ScrubPass(); err != nil {
		t.Fatal(err)
	}
	if st := r.standby.Engine().Stats(); st.ScrubDivergent != 0 {
		t.Fatalf("scrub found %d divergent chunks after a fenced split-brain, want 0", st.ScrubDivergent)
	}
	a, err := r.pools[0].Peek(0, 0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.pools[1].Peek(0, 0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("replicas diverge at byte %d: %#x vs %#x", i, a[i], b[i])
			}
		}
	}
}

// TestScrubRepairsDivergence: corrupt one replica behind the engine's back
// (a lost mirror write, a bit flip — anything the datapath cannot see) and
// prove one scrub pass detects the divergent chunk and rewrites it from the
// primary, converging the replicas, with the counters accounting for it.
func TestScrubRepairsDivergence(t *testing.T) {
	r := buildFencedRig(t)
	r.primary.Run()

	th, err := r.client.Thread(0)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0x7E}, 512)
	if err := th.WriteSync(0, data, 4096, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	// Corrupt replica 1 out-of-band.
	if err := r.pools[1].Poke(0, 4096, bytes.Repeat([]byte{0xBD}, 512)); err != nil {
		t.Fatal(err)
	}

	if err := r.primary.ScrubPass(); err != nil {
		t.Fatal(err)
	}
	st := r.primary.Stats()
	if st.ScrubDivergent < 1 || st.ScrubRepairs < 1 {
		t.Fatalf("scrub stats after corruption: divergent=%d repairs=%d, want >=1 each", st.ScrubDivergent, st.ScrubRepairs)
	}
	got, err := r.pools[1].Peek(0, 4096, 512)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("replica 1 still corrupt after scrub repair")
	}

	// A clean second pass: no new divergence, no new repairs.
	if err := r.primary.ScrubPass(); err != nil {
		t.Fatal(err)
	}
	if st2 := r.primary.Stats(); st2.ScrubRepairs != st.ScrubRepairs {
		t.Fatalf("clean pass repaired %d more chunks", st2.ScrubRepairs-st.ScrubRepairs)
	}
}

// fakeFencer scripts Fence outcomes for the promotion edge cases.
type fakeFencer struct {
	epoch  uint16
	err    error
	fenced []uint16
}

func (f *fakeFencer) Fence(e uint16) error {
	if f.err != nil {
		return f.err
	}
	f.fenced = append(f.fenced, e)
	return nil
}
func (f *fakeFencer) FenceEpoch() uint16 { return f.epoch }

// TestPromoteFencerEdgeCases pins the two non-happy fencing outcomes:
// an UNREACHABLE fencer (plain error) is skipped — it can accept writes
// from no one, so promotion proceeds — while a fencer that reports this
// promotion STALE (core.ErrFenced: someone promoted with a newer epoch
// already) aborts it, and the outcome is sticky across repeat calls.
func TestPromoteFencerEdgeCases(t *testing.T) {
	t.Run("unreachable fencer skipped", func(t *testing.T) {
		eng := spot.New(rdma.NewNIC(rdma.NewFabric(), wire.MAC{2, 0xFC, 0, 0, 0, 1}, wire.IPv4Addr{10, 10, 0, 1}, rdma.DefaultConfig()), spot.DefaultConfig())
		t.Cleanup(eng.Stop)
		st := NewStandby(eng)
		alive := &fakeFencer{epoch: 4}
		st.RegisterFencer(alive)
		st.RegisterFencer(&fakeFencer{err: fmt.Errorf("no route to host")})
		if err := st.Promote(); err != nil {
			t.Fatalf("promotion with one unreachable fencer failed: %v", err)
		}
		// New epoch is one past the highest visible epoch, pushed to the
		// reachable fencer.
		if got := st.Epoch(); got != 5 {
			t.Fatalf("epoch %d, want 5", got)
		}
		if len(alive.fenced) != 1 || alive.fenced[0] != 5 {
			t.Fatalf("reachable fencer saw %v, want [5]", alive.fenced)
		}
	})

	t.Run("superseded promotion aborts", func(t *testing.T) {
		eng := spot.New(rdma.NewNIC(rdma.NewFabric(), wire.MAC{2, 0xFC, 0, 0, 0, 2}, wire.IPv4Addr{10, 10, 0, 2}, rdma.DefaultConfig()), spot.DefaultConfig())
		t.Cleanup(eng.Stop)
		st := NewStandby(eng)
		st.RegisterFencer(&fakeFencer{err: fmt.Errorf("floor is ahead: %w", core.ErrFenced)})
		err := st.Promote()
		if !errors.Is(err, core.ErrFenced) {
			t.Fatalf("superseded Promote = %v, want core.ErrFenced", err)
		}
		// Sticky: the standby must not retry its way into serving.
		if err2 := st.Promote(); !errors.Is(err2, core.ErrFenced) {
			t.Fatalf("repeat Promote = %v, want the original core.ErrFenced", err2)
		}
	})
}
