package ha

import (
	"strings"
	"testing"
	"time"

	"cowbird/internal/ctl"
	"cowbird/internal/telemetry"
)

// TestTelemetryOp exercises the "telemetry" control op: disabled engines
// reject it with a actionable error, enabled engines return a snapshot that
// reflects the registry's live values.
func TestTelemetryOp(t *testing.T) {
	ec := NewEngineControl(nil, nil, nil, ctl.EngineMAC, ctl.EngineIP, false)

	resp := ec.Handle(ctl.Request{Op: "telemetry"})
	if resp.Err == "" || !strings.Contains(resp.Err, "not enabled") {
		t.Fatalf("disabled telemetry op: %+v", resp)
	}

	hub := telemetry.New(telemetry.Config{SampleEvery: 1})
	hub.ReadsIssued.Add(0, 42)
	hub.StageService.Observe(5 * time.Microsecond)
	ec.SetTelemetry(hub.Reg)

	resp = ec.Handle(ctl.Request{Op: "telemetry"})
	if resp.Err != "" {
		t.Fatal(resp.Err)
	}
	if resp.Telemetry == nil {
		t.Fatal("no snapshot in response")
	}
	if got := resp.Telemetry.Counters["cowbird_client_reads_issued_total"]; got != 42 {
		t.Fatalf("reads issued = %d, want 42", got)
	}
	if h := resp.Telemetry.Histograms["cowbird_stage_engine_service_ns"]; h.Count != 1 {
		t.Fatalf("service histogram count = %d, want 1", h.Count)
	}
	if out := telemetry.FormatBreakdown(*resp.Telemetry); !strings.Contains(out, "cowbird_stage_engine_service_ns") {
		t.Fatalf("breakdown missing histogram:\n%s", out)
	}
}
