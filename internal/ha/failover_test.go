package ha

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"cowbird/internal/core"
)

// TestFailoverExactlyOnceProperty is the tentpole property test: preempt
// the active engine at a randomized point in its RDMA post stream — every
// protocol phase (probe, metadata fetch, payload fetch, pool write,
// response batch, bookkeeping write, heartbeat) is a post, so the kill can
// land between any two protocol messages, including mid-round after pool
// writes executed but before their completions published, and mid-batch
// while conflicting reads are held behind an in-flight write — and prove
// that after standby takeover every issued request completes exactly once:
// no completion lost, no completion duplicated, no data torn, and per-type
// ordering (§4.2) preserved across the failover boundary.
func TestFailoverExactlyOnceProperty(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runFailoverScenario(t, seed)
		})
	}
}

func runFailoverScenario(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	ecfg, mcfg := testTimings()
	r := buildRig(t, ecfg, mcfg, true)
	// Arm the kill anywhere in the workload's post stream. Small values die
	// before serving anything; large values may outlive the workload (the
	// no-failover and idle-failover paths are exercised below either way).
	r.primary.PreemptAfter(rng.Int63n(150))
	r.primary.Run()
	r.monitor.Start()
	t.Cleanup(r.monitor.Stop)

	th, err := r.client.Thread(0)
	if err != nil {
		t.Fatal(err)
	}
	g := th.PollCreate()

	const n = 25
	const hotAddr = 4096 // all traffic targets one address: maximal conflicts
	const reqLen = 64

	completions := make(map[core.ReqID]int)
	var issued []core.ReqID
	var readOrder []core.ReqID
	readDest := make(map[core.ReqID][]byte)
	readFloor := make(map[core.ReqID]int) // value the read must at least see

	deadline := time.Now().Add(60 * time.Second)
	drain := func(timeout time.Duration) {
		ids, err := g.WaitErr(4*n, timeout)
		if err != nil {
			if errors.Is(err, core.ErrEngineDead) {
				return // detector tripped; auto-promotion is in flight
			}
			t.Fatal(err)
		}
		for _, id := range ids {
			completions[id]++
		}
	}
	pattern := func(v int) []byte {
		b := make([]byte, reqLen)
		for j := range b {
			b[j] = byte(v)
		}
		return b
	}
	// issuePair writes value v to the hot address and immediately reads it
	// back. The overlapping read forces the engine's conflict split, so the
	// read is held while the write is in flight — preemption inside that
	// window is exactly the "mid-write with paused reads" case.
	issuePair := func(v int) {
		for {
			id, err := th.AsyncWrite(0, pattern(v), hotAddr)
			if err == nil {
				issued = append(issued, id)
				if err := g.Add(id); err != nil {
					t.Fatal(err)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("issue write %d: %v", v, err)
			}
			drain(20 * time.Millisecond)
		}
		for {
			dest := make([]byte, reqLen)
			id, err := th.AsyncRead(0, hotAddr, dest)
			if err == nil {
				issued = append(issued, id)
				readOrder = append(readOrder, id)
				readDest[id] = dest
				readFloor[id] = v
				if err := g.Add(id); err != nil {
					t.Fatal(err)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("issue read %d: %v", v, err)
			}
			drain(20 * time.Millisecond)
		}
	}

	for v := 1; v <= n; v++ {
		issuePair(v)
	}
	for g.Len() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d requests never completed (primary preempted=%v, standby promoted=%v)",
				g.Len(), r.primary.Preempted(), r.standby.Promoted())
		}
		drain(50 * time.Millisecond)
	}

	// If the injected kill never fired, the whole run completed on the
	// primary; force the revocation now and prove takeover from idle.
	last := n
	if !r.primary.Preempted() {
		r.primary.Preempt()
		last = n + 1
		issuePair(last)
		for g.Len() > 0 {
			if time.Now().After(deadline) {
				t.Fatalf("idle-failover requests never completed")
			}
			drain(50 * time.Millisecond)
		}
	}

	// Every failover path ends promoted: the kill either fired mid-workload
	// or was forced above.
	if !r.standby.Promoted() {
		t.Fatal("standby never promoted despite preemption")
	}
	if r.monitor.Deaths() == 0 {
		t.Fatal("monitor never observed the preemption")
	}

	// Exactly-once completion delivery.
	for _, id := range issued {
		if c := completions[id]; c != 1 {
			t.Fatalf("request %v completed %d times, want exactly once", id, c)
		}
	}
	if len(completions) != len(issued) {
		t.Fatalf("%d completions for %d issued requests", len(completions), len(issued))
	}

	// Per-type ordering across the failover boundary: reads complete in
	// issue order, the hot address's value only grows, and a replayed read
	// may legally observe a later (unpublished-at-death) write but never an
	// earlier one. So in issue order: untorn data, value ≥ the write issued
	// just before the read, values nondecreasing.
	prev := 0
	for _, id := range readOrder {
		b := readDest[id]
		v := int(b[0])
		for _, x := range b {
			if int(x) != v {
				t.Fatalf("torn read: %v", b[:8])
			}
		}
		if v < readFloor[id] || v > last {
			t.Fatalf("read issued after write %d observed value %d (max %d): read-after-write broken across failover",
				readFloor[id], v, last)
		}
		if v < prev {
			t.Fatalf("per-type read ordering violated: value %d observed after %d", v, prev)
		}
		prev = v
	}

	// The pool must hold the last write exactly — replayed writes are
	// idempotent, so even re-executed ones converge to this.
	got, err := r.pool.Peek(0, hotAddr, reqLen)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range got {
		if x != byte(last) {
			t.Fatalf("pool state after failover: got %d, want %d", x, last)
		}
	}
}
