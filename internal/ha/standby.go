package ha

import (
	"fmt"
	"sync"

	"cowbird/internal/core"
	"cowbird/internal/engine/spot"
	"cowbird/internal/rdma"
)

// Standby wraps an idle spot engine whose QPs to the compute node and
// memory pool are already wired, ready to take over an instance the moment
// the active engine's lease expires. Keeping the QPs warm means the
// blackout is dominated by detection (the lease timeout) plus one RDMA read
// per queue, not by re-provisioning.
type Standby struct {
	eng *spot.Engine

	mu        sync.Mutex
	pending   []pendingInstance
	promoted  bool
	promotErr error
}

type pendingInstance struct {
	inst      *core.Instance
	computeQP *rdma.QP
	memQP     *rdma.QP
}

// NewStandby wraps eng, which must be created (spot.New) but not yet
// running — Promote starts it.
func NewStandby(eng *spot.Engine) *Standby {
	return &Standby{eng: eng}
}

// Engine returns the wrapped engine (for stats and Stop).
func (s *Standby) Engine() *spot.Engine { return s.eng }

// Register records an instance the standby will adopt on promotion. The
// QPs must be connected QPs on the standby engine's NIC using its CQ —
// wired at registration time, before any failure, so promotion needs no
// control-plane round trips.
func (s *Standby) Register(inst *core.Instance, computeQP, memQP *rdma.QP) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.promoted {
		return fmt.Errorf("ha: standby already promoted")
	}
	s.pending = append(s.pending, pendingInstance{inst: inst, computeQP: computeQP, memQP: memQP})
	return nil
}

// Promoted reports whether Promote has run.
func (s *Standby) Promoted() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.promoted
}

// Promote performs the takeover: for every registered instance it
// reconstructs the engine-side state from the durable red bookkeeping
// block (spot.Engine.AdoptInstance — one RDMA read per queue, executed on
// the engine's control shard behind its adoption barrier, so it is also
// safe on an engine that is already serving other instances) and then
// starts the engine, which spawns a worker per adopted queue set, resumes
// execution at the recovered MetaHead, and immediately re-announces
// liveness via heartbeat writes.
// Promote is idempotent; concurrent calls collapse to one takeover, and
// repeat calls return the first outcome.
func (s *Standby) Promote() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.promoted {
		return s.promotErr
	}
	s.promoted = true
	for _, p := range s.pending {
		if err := s.eng.AdoptInstance(p.inst, p.computeQP, p.memQP); err != nil {
			s.promotErr = fmt.Errorf("ha: promote: %w", err)
			return s.promotErr
		}
	}
	s.eng.Run()
	return nil
}
