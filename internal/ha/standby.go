package ha

import (
	"errors"
	"fmt"
	"sync"

	"cowbird/internal/core"
	"cowbird/internal/engine/spot"
	"cowbird/internal/rdma"
)

// Fencer is one party whose fencing epoch a promoted standby must bump
// before it serves: every pool replica (memnode.Node) and the compute-side
// client (core.Client) satisfy it. Fence raises the party's inbound-write
// floor to epoch — from then on RDMA WRITEs carrying an older epoch are
// NAKed, which is what turns a partitioned-but-alive old primary from a
// corruption hazard into a self-demoting zombie (DESIGN.md §14).
type Fencer interface {
	Fence(epoch uint16) error
	FenceEpoch() uint16
}

// Standby wraps an idle spot engine whose QPs to the compute node and
// memory pool are already wired, ready to take over an instance the moment
// the active engine's lease expires. Keeping the QPs warm means the
// blackout is dominated by detection (the lease timeout) plus one RDMA read
// per queue, not by re-provisioning.
type Standby struct {
	eng *spot.Engine

	mu        sync.Mutex
	pending   []pendingInstance
	fencers   []Fencer
	epoch     uint16
	promoted  bool
	promotErr error
}

type pendingInstance struct {
	inst      *core.Instance
	computeQP *rdma.QP
	memQP     *rdma.QP           // single-pool registration (Register)
	reps      []spot.PoolReplica // replicated registration (RegisterReplicated)
}

// NewStandby wraps eng, which must be created (spot.New) but not yet
// running — Promote starts it.
func NewStandby(eng *spot.Engine) *Standby {
	return &Standby{eng: eng}
}

// Engine returns the wrapped engine (for stats and Stop).
func (s *Standby) Engine() *spot.Engine { return s.eng }

// Register records an instance the standby will adopt on promotion. The
// QPs must be connected QPs on the standby engine's NIC using its CQ —
// wired at registration time, before any failure, so promotion needs no
// control-plane round trips.
func (s *Standby) Register(inst *core.Instance, computeQP, memQP *rdma.QP) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.promoted {
		return fmt.Errorf("ha: standby already promoted")
	}
	s.pending = append(s.pending, pendingInstance{inst: inst, computeQP: computeQP, memQP: memQP})
	return nil
}

// RegisterReplicated is Register for an instance whose regions are backed
// by multiple pool replicas: the standby holds its own warm QP to every
// replica, in the same priority order the active engine uses, so mirroring
// survives the takeover.
func (s *Standby) RegisterReplicated(inst *core.Instance, computeQP *rdma.QP, reps []spot.PoolReplica) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.promoted {
		return fmt.Errorf("ha: standby already promoted")
	}
	s.pending = append(s.pending, pendingInstance{inst: inst, computeQP: computeQP, reps: reps})
	return nil
}

// RegisterFencer adds a party whose epoch Promote bumps before adoption.
// Register the client and every pool replica of every pending instance; a
// standby with no fencers promotes unfenced (the pre-fencing behavior).
func (s *Standby) RegisterFencer(f Fencer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fencers = append(s.fencers, f)
}

// Promoted reports whether Promote has run.
func (s *Standby) Promoted() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.promoted
}

// Epoch returns the fencing epoch this standby serves under (0 until a
// fenced Promote).
func (s *Standby) Epoch() uint16 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Promote performs the takeover: it first fences the old primary out (see
// below), then for every registered instance reconstructs the engine-side
// state from the durable red bookkeeping block (spot.Engine.AdoptInstance —
// one RDMA read per queue, executed on the engine's control shard behind
// its adoption barrier, so it is also safe on an engine that is already
// serving other instances) and then starts the engine, which spawns a
// worker per adopted queue set, resumes execution at the recovered
// MetaHead, and immediately re-announces liveness via heartbeat writes.
//
// Fencing (when fencers are registered): the new epoch is one past the
// highest epoch any reachable fencer reports, and every fencer's floor is
// raised to it before the first adoption read. From that point the old
// primary — which may be alive behind a partition, not dead — cannot land
// another byte anywhere: its next WRITE to any pool replica or to the
// compute node's rings NAKs with a stale-epoch syndrome and demotes it
// (spot.Engine.Fenced). A fencer that is unreachable cannot accept writes
// from anyone, stale or current, so skipping it is safe — the engine's
// replica failure detector declares it dead on first contact. A fencer
// that rejects the epoch as below its own floor means someone else
// promoted with a newer epoch; this standby is itself stale and Promote
// fails with core.ErrFenced.
//
// Promote is idempotent; concurrent calls collapse to one takeover, and
// repeat calls return the first outcome.
func (s *Standby) Promote() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.promoted {
		return s.promotErr
	}
	s.promoted = true
	if len(s.fencers) > 0 {
		if err := s.fenceLocked(); err != nil {
			s.promotErr = err
			return s.promotErr
		}
	}
	for _, p := range s.pending {
		var err error
		if p.reps != nil {
			err = s.eng.AdoptInstanceReplicated(p.inst, p.computeQP, p.reps)
		} else {
			err = s.eng.AdoptInstance(p.inst, p.computeQP, p.memQP)
		}
		if err != nil {
			s.promotErr = fmt.Errorf("ha: promote: %w", err)
			return s.promotErr
		}
	}
	s.eng.Run()
	return nil
}

// fenceLocked bumps the fencing epoch at every fencer and stamps it on the
// standby's own QPs. Caller holds s.mu.
func (s *Standby) fenceLocked() error {
	epoch := uint16(0)
	for _, f := range s.fencers {
		if e := f.FenceEpoch(); e > epoch {
			epoch = e
		}
	}
	epoch++
	for _, f := range s.fencers {
		if err := f.Fence(epoch); err != nil {
			if errors.Is(err, core.ErrFenced) {
				return fmt.Errorf("ha: promote: superseded by a newer epoch: %w", err)
			}
			continue // unreachable fencer: accepts writes from no one; dead on first contact
		}
	}
	// Stamp the epoch on the pending QPs directly — they are not registered
	// with the engine until adoption, so SetFenceEpoch alone would miss them.
	for _, p := range s.pending {
		if p.computeQP != nil {
			p.computeQP.SetFenceEpoch(epoch)
		}
		if p.memQP != nil {
			p.memQP.SetFenceEpoch(epoch)
		}
		for _, r := range p.reps {
			if r.QP != nil {
				r.QP.SetFenceEpoch(epoch)
			}
		}
	}
	s.eng.SetFenceEpoch(epoch)
	s.epoch = epoch
	return nil
}
