// Package perfsim is the performance layer of the reproduction: a
// deterministic discrete-event model of the paper's testbed (8-core/16-
// hyperthread compute node, 100 Gb/s links through a Tofino switch, a
// memory pool, and the offload engines) driven by the calibrated CPU-cost
// model of package cpumodel.
//
// The functional packages (rdma, core, engine/*) prove the protocols
// correct; this package predicts their performance. Wall-clock measurement
// of the functional layer would be dominated by Go's scheduler and GC
// (the repro-band hint: "GC hurts datapath"), so every figure in the
// paper's evaluation is regenerated from this virtual-time model instead,
// preserving the shapes — who wins, by what factor, where curves cross and
// saturate — rather than absolute testbed numbers.
package perfsim

import (
	"math"
	"math/rand"
	"sort"

	"cowbird/internal/cpumodel"
	"cowbird/internal/sim"
)

// System enumerates every communication substrate the paper evaluates.
type System int

// Systems under test.
const (
	LocalMemory System = iota
	TwoSidedSync
	OneSidedSync
	OneSidedAsync  // batch-100 asynchronous verbs
	CowbirdNoBatch // Cowbird-Spot with response batching disabled
	CowbirdSpot
	CowbirdP4
	Redy
	AIFM
	SSD
)

// String names the system as the paper's legends do.
func (s System) String() string {
	switch s {
	case LocalMemory:
		return "Local memory"
	case TwoSidedSync:
		return "Two-sided RDMA (sync)"
	case OneSidedSync:
		return "One-sided RDMA (sync)"
	case OneSidedAsync:
		return "One-sided RDMA (async)"
	case CowbirdNoBatch:
		return "Cowbird (batching disabled)"
	case CowbirdSpot:
		return "Cowbird-Spot"
	case CowbirdP4:
		return "Cowbird-P4"
	case Redy:
		return "Redy"
	case AIFM:
		return "AIFM"
	case SSD:
		return "SSD"
	}
	return "unknown"
}

// Workload selects the application loop.
type Workload int

// Workloads from the paper's evaluation.
const (
	// HashProbe is the §8.1 microbenchmark: hash-index probes over records
	// split 5% local / 95% remote.
	HashProbe Workload = iota
	// FasterYCSB is the §7/§8.1 FASTER + YCSB macro-benchmark.
	FasterYCSB
	// RawReads is the §8.2 AIFM comparison: uniform remote object reads.
	RawReads
)

// Config describes one simulation run (one point on one curve).
type Config struct {
	System     System
	Workload   Workload
	Threads    int
	RecordSize int
	// OpsPerThread sizes the run; larger runs tighten the steady-state
	// estimate. Defaults to 3000.
	OpsPerThread int
	// RemoteFraction is the probability an op touches remote memory
	// (HashProbe: 0.95; FasterYCSB: the storage-layer hit rate).
	RemoteFraction float64
	// WriteFraction is the probability a remote op is a write.
	WriteFraction float64
	// Window is the async pipelining depth (the paper's batch size 100).
	Window int
	// BatchSize is the Cowbird engine's response batch.
	BatchSize int
	// Cores is the compute node's hyperthread count (testbed: 16).
	Cores int
	// PauseAllReads forces the switch rule (§5.3) onto any Cowbird engine:
	// every round's reads wait for its writes. The P4 engine always
	// behaves this way; the spot engine only stalls on true range overlaps
	// (rare under uniform workloads), modeled as no stall. Used by the
	// pause-rule ablation.
	PauseAllReads bool
	// SplitBookkeeping models the R3 ablation: bookkeeping is NOT packed
	// into one contiguous block, so probes and completion updates take two
	// RDMA messages instead of one.
	SplitBookkeeping bool
	// ExtraThreads are framework threads sharing the cores (Redy I/O).
	ExtraThreads int
	Model        cpumodel.Model
	Seed         int64
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Threads <= 0 {
		c.Threads = 1
	}
	if c.RecordSize <= 0 {
		c.RecordSize = 64
	}
	if c.OpsPerThread <= 0 {
		c.OpsPerThread = 3000
	}
	if c.RemoteFraction == 0 {
		c.RemoteFraction = 0.95
	}
	if c.Window <= 0 {
		c.Window = 100
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.Cores <= 0 {
		c.Cores = 16
	}
	if c.Model == (cpumodel.Model{}) {
		c.Model = cpumodel.Default()
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Result summarizes one run.
type Result struct {
	ThroughputMOPS float64
	CommRatio      float64 // time in the communication library / total time
	LatencyP50     float64 // ns, per completed remote op
	LatencyP99     float64 // ns
	// Traffic on the compute node's links, for the Figure 14 model.
	// Probe traffic (lowest priority, §8.4) is reported separately.
	BytesUpPerSec    float64 // compute → switch
	BytesDownPerSec  float64
	PktsUpPerSec     float64
	PktsDownPerSec   float64
	ProbePktsPerSec  float64
	ProbeBytesPerSec float64
	DurationNS       int64
}

// pktHeader is the per-packet RoCEv2 overhead (Ethernet+IP+UDP+BTH+RETH/
// AETH+ICRC, plus preamble/IFG).
const pktHeader = 90

// cluster is the modeled testbed.
type cluster struct {
	e   *sim.Engine
	m   cpumodel.Model
	cfg Config

	// NIC message-rate stations, split tx/rx (full-duplex processing).
	compNICtx station
	compNICrx station
	poolNICtx station
	poolNICrx station
	engNICtx  station

	// Unidirectional link stations (bytes at 100 Gb/s).
	c2s station // compute → switch
	s2c station // switch → compute
	p2s station // pool → switch
	s2p station // switch → pool

	poolCPU *multiStation // pool-side CPU for two-sided RPCs
	ssd     *multiStation // SSD channels (shallow effective queue depth)
	aifmRT  station       // AIFM/Shenango runtime dispatch core
	redyIO  station       // Redy I/O-thread pool
	engCPU  station       // Cowbird-Spot agent core (§8.4: at most one core)

	// Oversubscription: CPU bursts stretch by this factor when runnable
	// threads exceed cores (static per run).
	stretch float64

	msgGap int64 // ns between verbs at one RNIC

	// Traffic accounting on the compute links. Probe traffic is counted
	// separately: probes ride the lowest network priority and yield to
	// user traffic (§5.2, §8.4), so the Figure 14 interference model
	// excludes them.
	bytesUp, bytesDown, pktsUp, pktsDown int64
	probePkts, probeBytes                int64
	probeMode                            bool // set while building probe chains

	remaining int // live application threads
}

// account attributes one message's packets to the right class.
func (c *cluster) account(n, k int, up bool) {
	if c.probeMode {
		c.probePkts += int64(k)
		c.probeBytes += int64(n + k*pktHeader)
		return
	}
	if up {
		c.bytesUp += int64(n + k*pktHeader)
		c.pktsUp += int64(k)
	} else {
		c.bytesDown += int64(n + k*pktHeader)
		c.pktsDown += int64(k)
	}
}

func (c *cluster) wireT(bytes int) int64 {
	return int64(float64(bytes) / c.m.NetLinkBandwidth)
}

func (c *cluster) lat() int64 { return int64(c.m.NetBaseLatency) }

func (c *cluster) swd() int64 { return int64(c.m.SwitchPipeDelay) }

func (c *cluster) npkts(n int) int {
	const mtu = 1024
	k := (n + mtu - 1) / mtu
	if k == 0 {
		k = 1
	}
	return k
}

// cpu charges a CPU burst to the calling thread (stretched when the node
// is oversubscribed).
func (c *cluster) cpu(p *sim.Proc, ns float64) {
	if ns <= 0 {
		return
	}
	p.Sleep(int64(ns * c.stretch))
}

// --- transfer hop builders -------------------------------------------------
//
// Each builder returns the hop chain for one RDMA message and updates the
// compute-link traffic counters (used by the Figure 14 contention model).

// hopsC2P: compute → pool message of n payload bytes.
func (c *cluster) hopsC2P(n int) []hop {
	k := c.npkts(n)
	c.account(n, k, true)
	w := c.wireT(n + k*pktHeader)
	return []hop{
		{&c.compNICtx, c.msgGap},
		{&c.c2s, w},
		{nil, c.swd()},
		{&c.s2p, w},
		{nil, c.lat()},
	}
}

// hopsP2C: pool → compute message.
func (c *cluster) hopsP2C(n int) []hop {
	k := c.npkts(n)
	c.account(n, k, false)
	w := c.wireT(n + k*pktHeader)
	return []hop{
		{&c.poolNICtx, c.msgGap},
		{&c.p2s, w},
		{nil, c.swd()},
		{&c.s2c, w},
		{nil, c.lat()},
	}
}

// hopsE2C: engine → compute. For Cowbird-P4 the engine is the switch, so
// the engine NIC disappears and only the pipeline delay remains.
func (c *cluster) hopsE2C(n int, p4 bool) []hop {
	k := c.npkts(n)
	c.account(n, k, false)
	w := c.wireT(n + k*pktHeader)
	hops := make([]hop, 0, 4)
	if !p4 {
		hops = append(hops, hop{&c.engNICtx, c.msgGap})
	}
	return append(hops, hop{nil, c.swd()}, hop{&c.s2c, w}, hop{nil, c.lat()})
}

// hopsC2E: compute → engine.
func (c *cluster) hopsC2E(n int) []hop {
	k := c.npkts(n)
	c.account(n, k, true)
	w := c.wireT(n + k*pktHeader)
	return []hop{
		{&c.compNICtx, c.msgGap},
		{&c.c2s, w},
		{nil, c.swd() + c.lat()},
	}
}

// hopsE2P: engine → pool.
func (c *cluster) hopsE2P(n int, p4 bool) []hop {
	k := c.npkts(n)
	w := c.wireT(n + k*pktHeader)
	hops := make([]hop, 0, 4)
	if !p4 {
		hops = append(hops, hop{&c.engNICtx, c.msgGap})
	}
	return append(hops, hop{nil, c.swd()}, hop{&c.s2p, w}, hop{nil, c.lat()})
}

// hopsP2E: pool → engine.
func (c *cluster) hopsP2E(n int) []hop {
	k := c.npkts(n)
	w := c.wireT(n + k*pktHeader)
	return []hop{
		{&c.poolNICtx, c.msgGap},
		{&c.p2s, w},
		{nil, c.swd() + c.lat()},
	}
}

// concat joins hop chains.
func concat(chains ...[]hop) []hop {
	var out []hop
	for _, ch := range chains {
		out = append(out, ch...)
	}
	return out
}

// hopsOneSidedRead: a compute-issued one-sided read of n bytes, post→CQE.
func (c *cluster) hopsOneSidedRead(n int) []hop {
	return concat(
		c.hopsC2P(0),                    // read request
		[]hop{{&c.poolNICrx, c.msgGap}}, // responder turnaround
		c.hopsP2C(n),                    // response data
		[]hop{{&c.compNICrx, c.msgGap}}, // CQE generation
	)
}

// hopsOneSidedWrite: write + ACK round trip.
func (c *cluster) hopsOneSidedWrite(n int) []hop {
	return concat(
		c.hopsC2P(n),
		[]hop{{&c.poolNICrx, c.msgGap}},
		c.hopsP2C(0), // ACK
		[]hop{{&c.compNICrx, c.msgGap}},
	)
}

// completion is what a thread harvests.
type completion struct {
	issuedAt int64
}

// backend issues remote operations for a thread. Implementations charge
// issue-side CPU themselves and deliver completions to th.completions.
type backend interface {
	// issue starts one remote op (read unless isWrite) of n bytes.
	// Synchronous backends return only when the op is done (and deliver
	// the completion before returning).
	issue(p *sim.Proc, th *thread, n int, isWrite bool)
	// pollCPU is the harvest cost per completion.
	pollCPU() float64
}

// thread is one application thread.
type thread struct {
	c           *cluster
	id          int
	backend     backend
	completions *sim.Queue[completion]
	outstanding int
	commNS      int64
	latencies   []float64
	rng         *rand.Rand
}

// harvestReady drains available completions without blocking.
func (th *thread) harvestReady(p *sim.Proc) {
	for {
		cpl, ok := th.completions.TryGet()
		if !ok {
			return
		}
		th.retire(p, cpl)
	}
}

// harvestOne blocks for one completion.
func (th *thread) harvestOne(p *sim.Proc) {
	cpl, ok := th.completions.Get(p)
	if !ok {
		return
	}
	th.retire(p, cpl)
}

func (th *thread) retire(p *sim.Proc, cpl completion) {
	th.outstanding--
	th.latencies = append(th.latencies, float64(p.Now()-cpl.issuedAt))
	th.c.cpu(p, th.backend.pollCPU())
}

// appCost is the per-op application compute for the workload.
func (c *cluster) appCost() float64 {
	switch c.cfg.Workload {
	case HashProbe:
		return c.m.HashProbeCompute
	case FasterYCSB:
		return c.m.FasterOpBase + c.m.FasterCrossCoord*float64(c.cfg.Threads-1)
	case RawReads:
		return 40 // loop overhead only: raw dereferences
	}
	return 0
}

// run is the application thread body.
func (th *thread) run(p *sim.Proc) {
	c := th.c
	cfg := c.cfg
	for i := 0; i < cfg.OpsPerThread; i++ {
		c.cpu(p, c.appCost())
		if th.rng.Float64() >= cfg.RemoteFraction {
			// Local-memory portion of the working set.
			c.cpu(p, c.m.LocalAccess(cfg.RecordSize))
			th.harvestReady(p)
			continue
		}
		commStart := p.Now()
		if cfg.Workload == FasterYCSB {
			c.cpu(p, c.m.FasterIOWrap)
		}
		isWrite := th.rng.Float64() < cfg.WriteFraction
		th.backend.issue(p, th, cfg.RecordSize, isWrite)
		th.outstanding++
		th.harvestReady(p)
		for th.outstanding >= cfg.Window {
			th.harvestOne(p)
		}
		th.commNS += p.Now() - commStart
	}
	if f, ok := th.backend.(interface{ flush(*thread) }); ok {
		f.flush(th)
	}
	for th.outstanding > 0 {
		start := p.Now()
		th.harvestOne(p)
		th.commNS += p.Now() - start
	}
	c.remaining--
}

// Run executes one configuration and reports its metrics.
func Run(cfg Config) Result {
	cfg = cfg.withDefaults()
	e := sim.NewEngine()
	c := &cluster{
		e:       e,
		m:       cfg.Model,
		cfg:     cfg,
		poolCPU: newMultiStation(e, 8),
		ssd:     newMultiStation(e, 6),
		msgGap:  int64(1 / cfg.Model.RNICMsgRate),
	}
	for _, st := range []*station{
		&c.compNICtx, &c.compNICrx, &c.poolNICtx, &c.poolNICrx, &c.engNICtx,
		&c.c2s, &c.s2c, &c.p2s, &c.s2p, &c.redyIO, &c.engCPU, &c.aifmRT,
	} {
		st.e = e
	}
	runnable := cfg.Threads + cfg.ExtraThreads
	c.stretch = 1
	if runnable > cfg.Cores {
		c.stretch = float64(runnable) / float64(cfg.Cores)
	}

	be := newBackend(c)
	threads := make([]*thread, cfg.Threads)
	for i := range threads {
		th := &thread{
			c:           c,
			id:          i,
			backend:     be,
			completions: sim.NewQueue[completion](e),
			rng:         rand.New(rand.NewSource(cfg.Seed + int64(i)*7919)),
		}
		threads[i] = th
		c.remaining++
		e.Go("thread", th.run)
	}
	if s, ok := be.(interface{ start() }); ok {
		s.start()
	}
	end := e.Run()
	if end == 0 {
		end = 1
	}

	totalOps := int64(cfg.Threads) * int64(cfg.OpsPerThread)
	var comm int64
	var lats []float64
	for _, th := range threads {
		comm += th.commNS
		lats = append(lats, th.latencies...)
	}
	sort.Float64s(lats)
	res := Result{
		ThroughputMOPS:   float64(totalOps) / float64(end) * 1e3,
		CommRatio:        float64(comm) / (float64(end) * float64(cfg.Threads)),
		BytesUpPerSec:    float64(c.bytesUp) / float64(end) * 1e9,
		BytesDownPerSec:  float64(c.bytesDown) / float64(end) * 1e9,
		PktsUpPerSec:     float64(c.pktsUp) / float64(end) * 1e9,
		PktsDownPerSec:   float64(c.pktsDown) / float64(end) * 1e9,
		ProbePktsPerSec:  float64(c.probePkts) / float64(end) * 1e9,
		ProbeBytesPerSec: float64(c.probeBytes) / float64(end) * 1e9,
		DurationNS:       end,
	}
	if len(lats) > 0 {
		res.LatencyP50 = lats[len(lats)/2]
		res.LatencyP99 = lats[int(math.Ceil(float64(len(lats))*0.99))-1]
	}
	return res
}
