package perfsim

import "cowbird/internal/sim"

// newBackend constructs the model for cfg.System.
func newBackend(c *cluster) backend {
	switch c.cfg.System {
	case LocalMemory:
		return &localBackend{c: c}
	case OneSidedSync:
		return &syncBackend{c: c, twoSided: false}
	case TwoSidedSync:
		return &syncBackend{c: c, twoSided: true}
	case OneSidedAsync:
		return &asyncVerbsBackend{c: c}
	case CowbirdNoBatch:
		return newCowbirdBackend(c, false, 1)
	case CowbirdSpot:
		return newCowbirdBackend(c, false, c.cfg.BatchSize)
	case CowbirdP4:
		return newCowbirdBackend(c, true, 1)
	case Redy:
		return &redyBackend{c: c}
	case AIFM:
		return &aifmBackend{c: c}
	case SSD:
		return &ssdBackend{c: c}
	}
	return &localBackend{c: c}
}

// --- Local memory (upper bound) --------------------------------------------

type localBackend struct{ c *cluster }

func (b *localBackend) issue(p *sim.Proc, th *thread, n int, _ bool) {
	at := p.Now()
	b.c.cpu(p, b.c.m.LocalAccess(n))
	th.completions.Put(completion{issuedAt: at})
}

func (b *localBackend) pollCPU() float64 { return 0 }

// --- Synchronous RDMA (one- and two-sided) ---------------------------------

// syncBackend issues one verb at a time; the thread busy-polls the CQ until
// the completion arrives, so the entire round trip is charged to the
// thread's timeline (§2.1: blocking per-access cost).
type syncBackend struct {
	c        *cluster
	twoSided bool
}

func (b *syncBackend) issue(p *sim.Proc, th *thread, n int, isWrite bool) {
	c := b.c
	at := p.Now()
	c.cpu(p, c.m.RDMAPost())
	var hops []hop
	switch {
	case b.twoSided:
		// RPC: request send, server CPU dequeues and posts the reply write.
		sz := n
		if isWrite {
			sz = 0
		}
		hops = concat(
			c.hopsC2P(32),
			[]hop{{&c.poolNICrx, c.msgGap}},
		)
		// The server CPU is a multiStation: wrap it as a custom hop by
		// awaiting in two phases.
		t := c.await(p, hops)
		_ = t
		q := sim.NewQueue[struct{}](c.e)
		c.poolCPU.visitNow(int64(c.m.TwoSidedServerCPU), func() { q.Put(struct{}{}) })
		q.Get(p)
		c.await(p, concat(c.hopsP2C(sz), []hop{{&c.compNICrx, c.msgGap}}))
	case isWrite:
		c.await(p, c.hopsOneSidedWrite(n))
	default:
		c.await(p, c.hopsOneSidedRead(n))
	}
	c.cpu(p, c.m.RDMAPoll())
	th.completions.Put(completion{issuedAt: at})
}

func (b *syncBackend) pollCPU() float64 { return 0 } // charged inline

// --- Asynchronous one-sided RDMA -------------------------------------------

// asyncVerbsBackend posts verbs and overlaps communication with computation
// — but every request still costs a post and a poll on the compute CPU
// (Figure 2), which is exactly the overhead Cowbird removes.
type asyncVerbsBackend struct {
	c       *cluster
	pending [][]asyncOp // per-thread batch under formation
}

type asyncOp struct {
	at      int64
	n       int
	isWrite bool
}

// issue buffers the request in the thread's client-side batch (§8.1:
// "Asynchronous one-sided RDMA issues requests in batches of size 100");
// the verbs post when the batch fills. Each request still pays the Figure 2
// post cost up front — batching amortizes doorbells on the wire, not the
// per-WQE CPU.
func (b *asyncVerbsBackend) issue(p *sim.Proc, th *thread, n int, isWrite bool) {
	c := b.c
	if b.pending == nil {
		b.pending = make([][]asyncOp, c.cfg.Threads)
	}
	c.cpu(p, c.m.RDMAPost())
	b.pending[th.id] = append(b.pending[th.id], asyncOp{at: p.Now(), n: n, isWrite: isWrite})
	if len(b.pending[th.id]) >= c.cfg.Window {
		b.flushThread(th)
	}
}

// flushThread posts the accumulated batch.
func (b *asyncVerbsBackend) flushThread(th *thread) {
	c := b.c
	for _, op := range b.pending[th.id] {
		op := op
		hops := c.hopsOneSidedRead(op.n)
		if op.isWrite {
			hops = c.hopsOneSidedWrite(op.n)
		}
		c.runHops(hops, func() { th.completions.Put(completion{issuedAt: op.at}) })
	}
	b.pending[th.id] = b.pending[th.id][:0]
}

// flush is called by the thread before draining its final completions.
func (b *asyncVerbsBackend) flush(th *thread) {
	if b.pending != nil && len(b.pending[th.id]) > 0 {
		b.flushThread(th)
	}
}

func (b *asyncVerbsBackend) pollCPU() float64 { return b.c.m.RDMAPoll() }

// --- Redy -------------------------------------------------------------------

// redyBackend models Redy's dedicated I/O threads: requests are batched by
// pinned I/O cores (whose count the harness adds to ExtraThreads, eating
// into the compute node's core budget), then move over throughput-optimized
// RDMA connections.
type redyBackend struct{ c *cluster }

func (b *redyBackend) issue(p *sim.Proc, th *thread, n int, isWrite bool) {
	c := b.c
	at := p.Now()
	c.cpu(p, c.m.RedyBatchCPU)
	io := c.cfg.ExtraThreads
	if io < 1 {
		io = 1
	}
	// Service rate of the I/O pool, degraded by oversubscription.
	svc := int64(1 / (float64(io) * c.m.RedyIOThreadOps) * c.stretch)
	hops := []hop{
		{&c.redyIO, svc},
		{&c.c2s, c.wireT(32)},
		{nil, c.swd() + 2*c.lat()},
		{&c.s2c, c.wireT(n + pktHeader)},
		{nil, int64(c.m.EngineBatchWindow)},
	}
	c.runHops(hops, func() { th.completions.Put(completion{issuedAt: at}) })
}

func (b *redyBackend) pollCPU() float64 { return b.c.m.RDMAPollCQE }

// --- AIFM -------------------------------------------------------------------

// aifmBackend models AIFM's remoteable pointers over Shenango: every remote
// access pays dereference bookkeeping plus a green-thread yield/reschedule
// pair, so the core stays busy but each op's CPU bill is large (§8.2).
type aifmBackend struct{ c *cluster }

func (b *aifmBackend) issue(p *sim.Proc, th *thread, n int, isWrite bool) {
	c := b.c
	at := p.Now()
	c.cpu(p, c.m.AIFMDerefCost+c.m.AIFMYieldCost)
	hops := c.hopsOneSidedRead(n)
	if isWrite {
		hops = c.hopsOneSidedWrite(n)
	}
	// Every access funnels through the runtime's dispatch core (Shenango's
	// IOKernel + swap-in scheduling), which is what keeps AIFM's aggregate
	// throughput nearly flat across thread counts in Figure 12.
	hops = concat([]hop{{&c.aifmRT, 1100}}, hops)
	c.runHops(hops, func() { th.completions.Put(completion{issuedAt: at}) })
}

func (b *aifmBackend) pollCPU() float64 { return 300 } // reschedule cost

// --- SSD ---------------------------------------------------------------------

// ssdBackend is FASTER's default secondary storage: a SATA SSD with NCQ
// parallelism but millisecond-class latency relative to memory.
type ssdBackend struct{ c *cluster }

func (b *ssdBackend) issue(p *sim.Proc, th *thread, n int, isWrite bool) {
	c := b.c
	at := p.Now()
	c.cpu(p, 250) // block-layer submission
	dur := int64(c.m.SSDLatency + float64(n)/c.m.SSDBandwidth)
	c.ssd.visitNow(dur, func() { th.completions.Put(completion{issuedAt: at}) })
}

func (b *ssdBackend) pollCPU() float64 { return 200 }
