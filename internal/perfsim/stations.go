package perfsim

import "cowbird/internal/sim"

// station is a FIFO-by-arrival-time resource on the virtual timeline. A
// visit is registered at the current virtual time (the arrival instant):
// the server slot is reserved immediately — so later arrivals queue behind
// it — and the continuation fires when service completes. Because
// reservations happen in event order, a future completion can never block
// an earlier arrival, which a purely arithmetic FIFO would get wrong.
type station struct {
	e         *sim.Engine
	busyUntil int64
}

// visitNow reserves service for dur ns starting from the current virtual
// time and runs then at completion.
func (s *station) visitNow(dur int64, then func()) {
	now := s.e.Now()
	start := now
	if s.busyUntil > start {
		start = s.busyUntil
	}
	s.busyUntil = start + dur
	s.e.At(s.busyUntil, then)
}

// multiStation is a k-wide station (SSD NCQ, server CPU pool): arrivals
// take the earliest-free channel.
type multiStation struct {
	e  *sim.Engine
	ch []int64
}

func newMultiStation(e *sim.Engine, k int) *multiStation {
	return &multiStation{e: e, ch: make([]int64, k)}
}

func (m *multiStation) visitNow(dur int64, then func()) {
	now := m.e.Now()
	best := 0
	for i := 1; i < len(m.ch); i++ {
		if m.ch[i] < m.ch[best] {
			best = i
		}
	}
	start := now
	if m.ch[best] > start {
		start = m.ch[best]
	}
	m.ch[best] = start + dur
	m.e.At(m.ch[best], then)
}

// hop is one step of a transfer: service at a station, or a pure delay
// (propagation latency, pipeline delay) when st is nil.
type hop struct {
	st  *station
	dur int64
}

// runHops executes a chain of hops starting at the current virtual time,
// invoking then when the last hop completes.
func (c *cluster) runHops(hops []hop, then func()) {
	c.runHopsFrom(hops, 0, then)
}

func (c *cluster) runHopsFrom(hops []hop, k int, then func()) {
	if k == len(hops) {
		then()
		return
	}
	h := hops[k]
	next := func() { c.runHopsFrom(hops, k+1, then) }
	if h.st == nil {
		c.e.After(h.dur, next)
		return
	}
	h.st.visitNow(h.dur, next)
}

// await runs a chain from a simulation process, blocking until it
// completes, and returns the completion time.
func (c *cluster) await(p *sim.Proc, hops []hop) int64 {
	q := sim.NewQueue[int64](c.e)
	c.runHops(hops, func() { q.Put(c.e.Now()) })
	t, _ := q.Get(p)
	return t
}

// awaitAll launches n chains concurrently (hops built per index) and
// blocks until all complete, returning each chain's completion time.
func (c *cluster) awaitAll(p *sim.Proc, n int, build func(i int) []hop) []int64 {
	if n == 0 {
		return nil
	}
	type res struct {
		i int
		t int64
	}
	q := sim.NewQueue[res](c.e)
	for i := 0; i < n; i++ {
		i := i
		c.runHops(build(i), func() { q.Put(res{i: i, t: c.e.Now()}) })
	}
	out := make([]int64, n)
	for k := 0; k < n; k++ {
		r, _ := q.Get(p)
		out[r.i] = r.t
	}
	return out
}
