package perfsim

import (
	"math"
	"testing"
)

func failoverBase() Config {
	return Config{
		System: CowbirdSpot, Workload: HashProbe,
		Threads: 8, RecordSize: 64, RemoteFraction: 0.95,
		OpsPerThread: 800,
	}
}

// TestFailoverBlackoutDecomposition: the blackout is exactly its four
// components, is dominated by detection, and never loses the preemption
// window entirely (every component nonnegative).
func TestFailoverBlackoutDecomposition(t *testing.T) {
	r := RunFailover(FailoverConfig{Base: failoverBase(), HeartbeatNS: 1e6})
	sum := r.DetectNS + r.PromoteNS + r.ReconstructNS + r.ReplayNS
	if math.Abs(sum-r.BlackoutNS) > 1 {
		t.Fatalf("blackout %.0f != components %.0f", r.BlackoutNS, sum)
	}
	if r.DetectNS < 4e6 { // lease multiple 4 × 1ms heartbeat at minimum
		t.Fatalf("detection %.0fns below the lease timeout", r.DetectNS)
	}
	if r.PromoteNS != 0 {
		t.Fatalf("warm standby should promote for free, got %.0fns", r.PromoteNS)
	}
	if r.ReconstructNS <= 0 || r.ReplayNS <= 0 || r.SteadyMOPS <= 0 {
		t.Fatalf("degenerate result: %+v", r)
	}
}

// TestFailoverBlackoutMonotonicInHeartbeat: the ablation's headline claim —
// longer heartbeat intervals mean longer detection and therefore longer
// blackouts, roughly linearly (lease timeout is a multiple of the
// heartbeat).
func TestFailoverBlackoutMonotonicInHeartbeat(t *testing.T) {
	var prev float64
	for _, hbMS := range []float64{0.5, 1, 2, 4} {
		r := RunFailover(FailoverConfig{Base: failoverBase(), HeartbeatNS: hbMS * 1e6})
		if r.BlackoutNS <= prev {
			t.Fatalf("blackout not monotonic: %.0fns at %.1fms after %.0fns", r.BlackoutNS, hbMS, prev)
		}
		prev = r.BlackoutNS
	}
}

// TestFailoverTimelineShape: steady before the kill, a zero-throughput gap
// covering the blackout, a catch-up spike above steady while the ring
// backlog drains, then steady again — and completions are conserved: the
// spike's excess equals the backlog (nothing issued before or during the
// blackout is lost, the exactly-once replay property in timeline form).
func TestFailoverTimelineShape(t *testing.T) {
	fc := FailoverConfig{Base: failoverBase(), HeartbeatNS: 1e6, BucketNS: 100e3}
	r := RunFailover(fc)
	if len(r.Timeline) < 10 {
		t.Fatalf("timeline too coarse: %d points", len(r.Timeline))
	}
	var sawZero, sawSpike bool
	surplus := 0.0 // completions above the steady rate, in ops
	for i, p := range r.Timeline {
		if p.MOPS < 1e-9 {
			sawZero = true
		}
		if p.MOPS > r.SteadyMOPS*1.5 {
			sawSpike = true
		}
		if p.MOPS > r.SteadyMOPS*2.01 {
			t.Fatalf("bucket %d exceeds the catch-up cap: %.2f vs steady %.2f", i, p.MOPS, r.SteadyMOPS)
		}
		if d := p.MOPS - r.SteadyMOPS; d > 0 {
			surplus += d * 1e-3 * fc.BucketNS
		}
	}
	if !sawZero {
		t.Fatal("timeline has no blackout gap")
	}
	if !sawSpike {
		t.Fatal("timeline has no catch-up spike")
	}
	// Conservation of buffered requests: the catch-up spike's surplus is
	// exactly the ring backlog — everything buffered during the blackout
	// completes, once (the exactly-once replay property in timeline form) —
	// and the backlog never exceeds ring capacity.
	if cap := float64(1024 * 8); r.BacklogOps > cap {
		t.Fatalf("backlog %.0f exceeds ring capacity %.0f", r.BacklogOps, cap)
	}
	if math.Abs(surplus-r.BacklogOps) > r.BacklogOps*0.1+1 {
		t.Fatalf("spike surplus %.0f ops != backlog %.0f ops", surplus, r.BacklogOps)
	}
}
