package perfsim

import "math"

// Failover model: what a spot-VM preemption (internal/ha) does to
// application throughput. The steady state comes from the discrete-event
// model (Run); the blackout is decomposed analytically from the protocol,
// because every phase of a takeover is a fixed, countable sequence of
// messages and timeouts:
//
//	detect      – the engine's last heartbeat landed on average half a
//	              heartbeat interval before death, the compute node waits a
//	              lease timeout of silence, and its sampler adds half a
//	              monitor period of granularity;
//	promote     – zero for a warm standby (promotion is a local call on
//	              pre-wired QPs), or a re-provisioning cost when a fresh
//	              engine must be started and pass Phase I setup;
//	reconstruct – one RDMA read of the durable red bookkeeping block per
//	              queue, serialized on the standby's completion queue;
//	replay      – re-execution of entries the dead engine completed but
//	              never published: at most one engine round, since each
//	              round publishes in a single red-block write (§4.2).
//
// Requests issued during the blackout are not lost — they buffer in the
// compute-side rings (the durable state the takeover resumes from) up to
// ring capacity — so the post-recovery timeline shows a catch-up spike
// above steady state while the standby drains the backlog, batching harder
// than the steady-state arrival rate requires.
type FailoverConfig struct {
	// Base is the steady-state workload (typically CowbirdSpot).
	Base Config
	// HeartbeatNS is the engine's heartbeat interval in ns.
	HeartbeatNS float64
	// LeaseMultiple is the lease timeout expressed in heartbeat intervals
	// (default 4 — matching internal/ha's guidance that the timeout be a
	// multiple of the heartbeat to avoid false revocations).
	LeaseMultiple float64
	// MonitorNS is the failure detector's sampling period (default half the
	// heartbeat interval).
	MonitorNS float64
	// ReprovisionNS is the standby cold-start cost; 0 models the warm
	// standby of internal/ha (pre-wired QPs, promotion is a local call).
	ReprovisionNS float64
	// QueueCapacity bounds the per-queue backlog that can accumulate during
	// the blackout (metadata ring entries; default 1024).
	QueueCapacity int
	// PreemptAtNS is when the engine dies (default one quarter into the
	// window).
	PreemptAtNS float64
	// WindowNS is the modeled wall-clock span (default covers the blackout
	// with steady state on both sides).
	WindowNS float64
	// BucketNS is the timeline resolution (default 250µs).
	BucketNS float64
}

// TimelinePoint is one bucket of the throughput timeline.
type TimelinePoint struct {
	TimeNS float64 // bucket start
	MOPS   float64 // completion rate inside the bucket
}

// FailoverResult reports the blackout decomposition and the timeline.
type FailoverResult struct {
	SteadyMOPS    float64
	DetectNS      float64
	PromoteNS     float64
	ReconstructNS float64
	ReplayNS      float64
	BlackoutNS    float64 // sum of the four components: no completions land
	BacklogOps    float64 // requests buffered in the rings during the blackout
	DrainNS       float64 // catch-up time after recovery
	Timeline      []TimelinePoint
}

// RunFailover simulates one preemption event.
func RunFailover(fc FailoverConfig) FailoverResult {
	base := fc.Base.withDefaults()
	if fc.HeartbeatNS <= 0 {
		fc.HeartbeatNS = 1e6 // 1 ms
	}
	if fc.LeaseMultiple <= 0 {
		fc.LeaseMultiple = 4
	}
	if fc.MonitorNS <= 0 {
		fc.MonitorNS = fc.HeartbeatNS / 2
	}
	if fc.QueueCapacity <= 0 {
		fc.QueueCapacity = 1024
	}
	if fc.BucketNS <= 0 {
		fc.BucketNS = 250e3
	}

	steady := Run(base)
	m := base.Model

	detect := fc.HeartbeatNS/2 + fc.LeaseMultiple*fc.HeartbeatNS + fc.MonitorNS/2
	promote := fc.ReprovisionNS
	// One red-block read per queue: request + response round trip through
	// the switch, paced by the RNIC message gap, serialized under the
	// standby's adoption lock.
	rtt := 2*(m.NetBaseLatency+m.SwitchPipeDelay) + 2/m.RNICMsgRate
	reconstruct := float64(base.Threads) * rtt
	// Replay re-executes at most one unpublished round of entries, served
	// by the (single) engine at its steady per-op pace.
	opsPerNS := steady.ThroughputMOPS * 1e-3
	roundEntries := math.Min(float64(base.Window), 64)
	replay := roundEntries / math.Max(opsPerNS, 1e-9)

	blackout := detect + promote + reconstruct + replay

	backlog := math.Min(blackout*opsPerNS, float64(fc.QueueCapacity*base.Threads))
	// Post-recovery the engine catches up at roughly twice the steady
	// arrival rate (deeper response batches per round); the backlog drains
	// at the 1× surplus.
	const catchUp = 2.0
	drain := backlog / math.Max(opsPerNS*(catchUp-1), 1e-9)

	if fc.WindowNS <= 0 {
		fc.WindowNS = 4*blackout + 4*drain + 8e6
	}
	if fc.PreemptAtNS <= 0 {
		fc.PreemptAtNS = fc.WindowNS / 4
	}

	// Piecewise completion rate (ops/ns) over the window.
	type seg struct {
		start, end float64
		rate       float64
	}
	segs := []seg{
		{0, fc.PreemptAtNS, opsPerNS},
		{fc.PreemptAtNS, fc.PreemptAtNS + blackout, 0},
		{fc.PreemptAtNS + blackout, fc.PreemptAtNS + blackout + drain, opsPerNS * catchUp},
		{fc.PreemptAtNS + blackout + drain, fc.WindowNS, opsPerNS},
	}
	res := FailoverResult{
		SteadyMOPS:    steady.ThroughputMOPS,
		DetectNS:      detect,
		PromoteNS:     promote,
		ReconstructNS: reconstruct,
		ReplayNS:      replay,
		BlackoutNS:    blackout,
		BacklogOps:    backlog,
		DrainNS:       drain,
	}
	for t := 0.0; t < fc.WindowNS; t += fc.BucketNS {
		t1 := math.Min(t+fc.BucketNS, fc.WindowNS)
		ops := 0.0
		for _, s := range segs {
			lo, hi := math.Max(t, s.start), math.Min(t1, s.end)
			if hi > lo {
				ops += (hi - lo) * s.rate
			}
		}
		res.Timeline = append(res.Timeline, TimelinePoint{TimeNS: t, MOPS: ops / (t1 - t) * 1e3})
	}
	return res
}
