package perfsim

import "cowbird/internal/sim"

// cbReq is one Cowbird request in the engine model.
type cbReq struct {
	th       *thread
	issuedAt int64
	n        int
	isWrite  bool
}

// cowbirdBackend models the Cowbird datapath: the application thread pays
// only local stores to issue (CowbirdPost) and local loads to harvest
// (CowbirdPoll); an engine actor per queue set performs the §5.2 protocol
// phases on its own timeline.
type cowbirdBackend struct {
	c      *cluster
	p4     bool
	batch  int
	queues []*sim.Queue[cbReq] // one per thread (per-hardware-thread rings)
}

func newCowbirdBackend(c *cluster, p4 bool, batch int) *cowbirdBackend {
	if batch < 1 {
		batch = 1
	}
	b := &cowbirdBackend{c: c, p4: p4, batch: batch}
	for i := 0; i < c.cfg.Threads; i++ {
		b.queues = append(b.queues, sim.NewQueue[cbReq](c.e))
	}
	return b
}

// start launches one engine actor per queue set (called by Run after the
// threads are spawned).
func (b *cowbirdBackend) start() {
	for i := range b.queues {
		q := b.queues[i]
		b.c.e.Go("cowbird-engine", func(p *sim.Proc) { b.engineLoop(p, q) })
	}
}

func (b *cowbirdBackend) issue(p *sim.Proc, th *thread, n int, isWrite bool) {
	// Issuing is purely local stores: reserve ring slots and fill the
	// metadata entry (plus copying the payload for writes).
	c := b.c
	cost := c.m.CowbirdPost
	if isWrite {
		cost += c.m.Copy(n)
	}
	c.cpu(p, cost)
	b.queues[th.id].Put(cbReq{th: th, issuedAt: p.Now(), n: n, isWrite: isWrite})
}

// pollCPU: progress-counter check plus copying the response out of the
// ring into the application buffer (§4.3 "copying the responses back from
// response buffers") — which is why Cowbird lands just under, not above,
// purely local memory.
func (b *cowbirdBackend) pollCPU() float64 {
	m := b.c.m
	return m.CowbirdPoll + m.Copy(b.c.cfg.RecordSize) + 0.35*m.MemLatency
}

// engWork charges the spot agent's per-entry CPU on its single shared core
// (doorbell-batched verbs keep this small); the switch data plane has no
// such stage — its per-packet cost lives in the hop chains.
func (b *cowbirdBackend) engWork() []hop {
	if b.p4 {
		return nil
	}
	return []hop{{&b.c.engCPU, int64(b.c.m.EngineProcessing)}}
}

// engineLoop is the §5.2 protocol on the engine's timeline: Probe at the
// configured pacing, fetch new metadata, Execute the transfers, Complete
// with bookkeeping writes. Transfers from different requests pipeline
// through the shared stations, so the bottleneck (links, NIC message rate,
// or engine) emerges rather than being assumed.
func (b *cowbirdBackend) engineLoop(p *sim.Proc, q *sim.Queue[cbReq]) {
	c := b.c
	const maxEntries = 256
	for {
		if c.remaining == 0 && q.Len() == 0 {
			return
		}
		if q.Len() == 0 {
			// Idle pacing; under load the engine probes back-to-back
			// ("start at a low baseline rate and ramp up only when
			// activity is detected", §5.2).
			p.Sleep(int64(c.m.ProbeInterval))
		}
		// Phase II: probe the green block (engine→compute read, compute
		// DMA turnaround, response back to the engine). Probe packets run
		// at the lowest priority, so they count in the probe traffic class.
		c.probeMode = true
		probe := concat(
			c.hopsE2C(0, b.p4),
			[]hop{{&c.compNICrx, c.msgGap}},
			c.hopsC2E(32),
		)
		if c.cfg.SplitBookkeeping {
			// R3 ablation: the tail pointers live in separate blocks, so
			// the probe needs a second read round trip.
			probe = concat(probe,
				c.hopsE2C(0, b.p4),
				[]hop{{&c.compNICrx, c.msgGap}},
				c.hopsC2E(32),
			)
		}
		c.probeMode = false
		c.await(p, probe)
		if q.Len() == 0 {
			continue
		}
		// Fetch the new metadata entries (head→tail).
		var reqs []cbReq
		for len(reqs) < maxEntries {
			r, ok := q.TryGet()
			if !ok {
				break
			}
			reqs = append(reqs, r)
		}
		c.await(p, concat(
			c.hopsE2C(0, b.p4),
			[]hop{{&c.compNICrx, c.msgGap}},
			c.hopsC2E(len(reqs)*24),
		))

		// Phase III, writes first (the P4 pause-all-reads rule orders them
		// ahead of the round's reads): fetch the payload from the compute
		// node, forward it to the pool, complete on the pool's ACK.
		var writes, reads []cbReq
		for _, r := range reqs {
			if r.isWrite {
				writes = append(writes, r)
			} else {
				reads = append(reads, r)
			}
		}
		// The switch pauses every newly probed read until the round's
		// writes reach Step 2b (§5.3); the spot agent's range-overlap check
		// lets non-conflicting reads proceed immediately (§6).
		if b.p4 || c.cfg.PauseAllReads {
			b.runWrites(p, writes, true)
		} else {
			b.runWrites(p, writes, false)
		}

		// Reads execute fully pipelined: each group's pool fetches run
		// concurrently, and as soon as the group's last fetch lands the
		// batched response write (one RDMA message, one compute-NIC receive
		// slot per group, §6) goes out. The engine actor does not block —
		// it returns to probing while transfers drain through the stations.
		for lo := 0; lo < len(reads); lo += b.batch {
			hi := lo + b.batch
			if hi > len(reads) {
				hi = len(reads)
			}
			b.dispatchReadGroup(reads[lo:hi])
		}
		// Phase IV, batched for the spot engine: one red-block write per
		// round.
		if !b.p4 {
			c.runHops(concat(c.hopsE2C(32, b.p4), []hop{{&c.compNICrx, c.msgGap}}), func() {})
		}
	}
}

// dispatchReadGroup launches one batch group's pool fetches and chains the
// batched response write off the last arrival.
func (b *cowbirdBackend) dispatchReadGroup(group []cbReq) {
	c := b.c
	bytes := 0
	for _, r := range group {
		bytes += r.n
	}
	remaining := len(group)
	onFetched := func() {
		remaining--
		if remaining > 0 {
			return
		}
		respHops := concat(
			c.hopsE2C(bytes, b.p4),
			[]hop{{&c.compNICrx, c.msgGap}},
		)
		if b.p4 {
			// Phase IV per request on the switch (batch size is 1).
			respHops = concat(respHops, c.hopsE2C(32, b.p4), []hop{{&c.compNICrx, c.msgGap}})
		}
		c.runHops(respHops, func() {
			for _, r := range group {
				r.th.completions.Put(completion{issuedAt: r.issuedAt})
			}
			// The compute NIC acknowledges the write(s): one ACK per RDMA
			// message, upstream — where it contends with user TCP traffic.
			nacks := 1
			if b.p4 {
				nacks = 2 // response write + bookkeeping write
			}
			for a := 0; a < nacks; a++ {
				c.runHops(c.hopsC2E(0), func() {})
			}
		})
	}
	for i := range group {
		r := group[i]
		fetch := concat(
			b.engWork(), // agent CPU: parse the entry, post the pool read
			c.hopsE2P(0, b.p4),
			[]hop{{&c.poolNICrx, c.msgGap}},
			c.hopsP2E(r.n),
		)
		c.runHops(fetch, onFetched)
	}
}

// runWrites executes the round's writes concurrently; with block set it
// waits for all their pool ACKs (the pause window for this round's reads).
func (b *cowbirdBackend) runWrites(p *sim.Proc, writes []cbReq, block bool) {
	if len(writes) == 0 {
		return
	}
	c := b.c
	done := sim.NewQueue[int](c.e)
	for i := range writes {
		r := writes[i]
		hops := concat(
			b.engWork(),
			c.hopsE2C(0, b.p4), // Step 1b: payload fetch request
			[]hop{{&c.compNICrx, c.msgGap}},
			c.hopsC2E(r.n),       // payload
			c.hopsE2P(r.n, b.p4), // Step 2b: write to pool
			[]hop{{&c.poolNICrx, c.msgGap}},
			c.hopsP2E(0), // ACK
		)
		if b.p4 {
			hops = concat(hops, c.hopsE2C(32, b.p4), []hop{{&c.compNICrx, c.msgGap}})
		}
		c.runHops(hops, func() {
			r.th.completions.Put(completion{issuedAt: r.issuedAt})
			done.Put(1)
		})
	}
	if !block {
		return
	}
	for range writes {
		done.Get(p)
	}
}
