package perfsim

import (
	"testing"
)

// The tests in this file encode the paper's qualitative claims as
// assertions on the simulation output — the acceptance criteria from
// DESIGN.md §4. They use reduced op counts; the bench harness runs the
// full-size versions.

const testOps = 1500

func micro(sys System, threads, record int) Result {
	return Run(Config{
		System: sys, Workload: HashProbe, Threads: threads,
		RecordSize: record, RemoteFraction: 0.95, OpsPerThread: testOps,
	})
}

func TestDeterminism(t *testing.T) {
	a := micro(CowbirdSpot, 4, 64)
	b := micro(CowbirdSpot, 4, 64)
	if a != b {
		t.Fatalf("same config diverged:\n%+v\n%+v", a, b)
	}
}

func TestLocalMemoryScalesLinearly(t *testing.T) {
	r1 := micro(LocalMemory, 1, 64).ThroughputMOPS
	r16 := micro(LocalMemory, 16, 64).ThroughputMOPS
	if ratio := r16 / r1; ratio < 14 || ratio > 17 {
		t.Fatalf("local memory scaled %.1fx from 1 to 16 threads", ratio)
	}
}

// Figure 1/8 claim: Cowbird closes the gap between remote and local memory
// (within 11.4% in the paper; we accept within 20%).
func TestCowbirdNearLocalMemory(t *testing.T) {
	for _, threads := range []int{1, 4} {
		local := micro(LocalMemory, threads, 256).ThroughputMOPS
		cow := micro(CowbirdSpot, threads, 256).ThroughputMOPS
		if cow < 0.8*local {
			t.Errorf("threads=%d: Cowbird %.2f vs local %.2f (%.0f%%)", threads, cow, local, 100*cow/local)
		}
		if cow > local {
			t.Errorf("threads=%d: Cowbird %.2f exceeds local %.2f", threads, cow, local)
		}
	}
}

// Figure 8 claim: Cowbird is up to 3.5x faster than async RDMA; we require
// at least 2.5x at some thread count.
func TestCowbirdBeatsAsyncRDMA(t *testing.T) {
	best := 0.0
	for _, threads := range []int{1, 4, 16} {
		cow := micro(CowbirdSpot, threads, 64).ThroughputMOPS
		async := micro(OneSidedAsync, threads, 64).ThroughputMOPS
		if cow < async {
			t.Errorf("threads=%d: Cowbird %.2f below async %.2f", threads, cow, async)
		}
		if r := cow / async; r > best {
			best = r
		}
	}
	if best < 2.5 {
		t.Fatalf("max Cowbird/async ratio %.2f, want >= 2.5 (paper: up to 3.5x)", best)
	}
}

// §2/§8 claim: async is far more efficient than sync, and Cowbird beats
// one-sided RDMA by up to 9x end to end.
func TestAsyncBeatsSyncAndCowbirdBeatsRDMA(t *testing.T) {
	sync1 := micro(OneSidedSync, 4, 64).ThroughputMOPS
	async1 := micro(OneSidedAsync, 4, 64).ThroughputMOPS
	if async1 < 3*sync1 {
		t.Errorf("async %.2f not >> sync %.2f", async1, sync1)
	}
	cow := micro(CowbirdSpot, 16, 64).ThroughputMOPS
	if cow < 9*sync1 {
		t.Errorf("Cowbird@16 %.2f not ~9x one-sided sync@4 %.2f", cow, sync1)
	}
}

// Two-sided is the slowest primitive (extra server involvement).
func TestTwoSidedSlowest(t *testing.T) {
	two := micro(TwoSidedSync, 4, 64).ThroughputMOPS
	one := micro(OneSidedSync, 4, 64).ThroughputMOPS
	if two >= one {
		t.Fatalf("two-sided %.2f >= one-sided %.2f", two, one)
	}
}

// Figure 8a/b claim: batching matters at high thread counts (request-level
// RNIC bottleneck).
func TestBatchingHelpsAtScale(t *testing.T) {
	nb := micro(CowbirdNoBatch, 16, 64).ThroughputMOPS
	b := micro(CowbirdSpot, 16, 64).ThroughputMOPS
	if b < 1.2*nb {
		t.Fatalf("batching gain at 16 threads only %.2fx (%.1f vs %.1f)", b/nb, b, nb)
	}
}

// Figure 8c/d claim: large records saturate the network with enough
// threads; throughput approaches the bandwidth bound.
func TestBandwidthSaturation(t *testing.T) {
	r := micro(CowbirdSpot, 16, 512)
	m := r.ThroughputMOPS
	bound := 12.5e9 / 512 / 1e6 // MOPS if payload used the full link
	if m > bound {
		t.Fatalf("throughput %.1f exceeds the physical bound %.1f", m, bound)
	}
	if m < 0.5*bound {
		t.Fatalf("512B@16 threads reaches only %.1f of bound %.1f; no saturation", m, bound)
	}
	// And the smaller size must NOT be bandwidth-bound.
	small := micro(CowbirdSpot, 4, 8)
	if small.BytesDownPerSec > 0.5*12.5e9 {
		t.Fatalf("8B workload unexpectedly bandwidth-bound")
	}
}

func faster(sys System, threads int, extra int) Result {
	return Run(Config{
		System: sys, Workload: FasterYCSB, Threads: threads, RecordSize: 64,
		RemoteFraction: 0.72, WriteFraction: 0.1, OpsPerThread: testOps,
		ExtraThreads: extra,
	})
}

// Figure 9 claims: remote memory >= 2.3x SSD; Cowbird 12-84x SSD; Cowbird
// within 8% of local memory; Cowbird-P4 ~ Cowbird-Spot.
func TestFasterShapes(t *testing.T) {
	ssd1 := faster(SSD, 1, 0).ThroughputMOPS
	ssd16 := faster(SSD, 16, 0).ThroughputMOPS
	syncR := faster(OneSidedSync, 1, 0).ThroughputMOPS
	if syncR < 2.3*ssd1 {
		t.Errorf("remote memory %.3f not >= 2.3x SSD %.3f", syncR, ssd1)
	}
	cow1 := faster(CowbirdSpot, 1, 0).ThroughputMOPS
	cow16 := faster(CowbirdSpot, 16, 0).ThroughputMOPS
	if r := cow1 / ssd1; r < 5 || r > 30 {
		t.Errorf("Cowbird/SSD at 1 thread = %.1fx, want ~12x", r)
	}
	if r := cow16 / ssd16; r < 40 || r > 120 {
		t.Errorf("Cowbird/SSD at 16 threads = %.1fx, want ~84x", r)
	}
	local16 := faster(LocalMemory, 16, 0).ThroughputMOPS
	if cow16 < 0.9*local16 {
		t.Errorf("Cowbird %.3f not within ~8%% of local %.3f", cow16, local16)
	}
	p416 := faster(CowbirdP4, 16, 0).ThroughputMOPS
	if diff := p416 / cow16; diff < 0.9 || diff > 1.1 {
		t.Errorf("P4 %.3f and Spot %.3f diverge (%.2f)", p416, cow16, diff)
	}
	async16 := faster(OneSidedAsync, 16, 0).ThroughputMOPS
	if cow16 < 1.15*async16 {
		t.Errorf("Cowbird %.3f not >~15%% above async %.3f (paper: up to 40%%)", cow16, async16)
	}
}

// Figure 10 claim: sync RDMA spends most of its time in communication;
// Cowbird consistently less than 20%.
func TestCommunicationRatio(t *testing.T) {
	syncR := faster(OneSidedSync, 1, 0).CommRatio
	if syncR < 0.55 {
		t.Errorf("sync comm ratio %.2f, want > 0.55", syncR)
	}
	for _, threads := range []int{1, 4, 16} {
		cow := faster(CowbirdSpot, threads, 0).CommRatio
		if cow > 0.20 {
			t.Errorf("threads=%d: Cowbird comm ratio %.2f > 0.20", threads, cow)
		}
	}
}

// Figure 11 claim: Redy tracks Cowbird until its I/O threads exhaust the
// cores, then degrades while Cowbird keeps scaling.
func TestRedyOutOfCores(t *testing.T) {
	redy8 := faster(Redy, 8, 8).ThroughputMOPS
	redy16 := faster(Redy, 16, 16).ThroughputMOPS
	cow16 := faster(CowbirdSpot, 16, 0).ThroughputMOPS
	if redy16 >= redy8 {
		t.Errorf("Redy did not degrade past the core budget: %.3f@8 vs %.3f@16", redy8, redy16)
	}
	if cow16 < 1.5*redy16 {
		t.Errorf("Cowbird %.3f not >=1.5x Redy %.3f at 16 threads (paper: 1.6x)", cow16, redy16)
	}
}

// Figure 12 claim: Cowbird reaches an order of magnitude (up to ~71x) more
// throughput than AIFM on 8-byte reads.
func TestAIFMRatio(t *testing.T) {
	best := 0.0
	for _, threads := range []int{1, 8, 16} {
		a := Run(Config{System: AIFM, Workload: RawReads, Threads: threads,
			RecordSize: 8, RemoteFraction: 1, Window: 8, OpsPerThread: testOps}).ThroughputMOPS
		c := Run(Config{System: CowbirdSpot, Workload: RawReads, Threads: threads,
			RecordSize: 8, RemoteFraction: 1, OpsPerThread: testOps}).ThroughputMOPS
		if c < 10*a {
			t.Errorf("threads=%d: Cowbird %.2f not >= 10x AIFM %.2f", threads, c, a)
		}
		if r := c / a; r > best {
			best = r
		}
	}
	if best < 50 || best > 120 {
		t.Fatalf("peak Cowbird/AIFM ratio %.0fx, want ~71x", best)
	}
}

// Figure 13 claims: without batching Cowbird latency is comparable to sync
// RDMA (small constant overhead); with batching it stays well below async
// RDMA's.
func TestLatencyShapes(t *testing.T) {
	lat := func(sys System, window, size int) Result {
		return Run(Config{System: sys, Workload: RawReads, Threads: 1,
			RecordSize: size, RemoteFraction: 1, Window: window, OpsPerThread: testOps})
	}
	for _, size := range []int{8, 512, 2048} {
		sync := lat(OneSidedSync, 1, size)
		nb := lat(CowbirdNoBatch, 1, size)
		async := lat(OneSidedAsync, 100, size)
		cb := lat(CowbirdSpot, 100, size)
		if nb.LatencyP50 > 3.5*sync.LatencyP50 {
			t.Errorf("size %d: no-batch Cowbird p50 %.0f not comparable to sync %.0f", size, nb.LatencyP50, sync.LatencyP50)
		}
		if cb.LatencyP50 >= async.LatencyP50 {
			t.Errorf("size %d: batched Cowbird p50 %.0f not below async %.0f", size, cb.LatencyP50, async.LatencyP50)
		}
		if cb.LatencyP99 >= async.LatencyP99 {
			t.Errorf("size %d: batched Cowbird p99 %.0f not below async %.0f", size, cb.LatencyP99, async.LatencyP99)
		}
		if sync.LatencyP99 < sync.LatencyP50 || cb.LatencyP99 < cb.LatencyP50 {
			t.Errorf("size %d: p99 below p50", size)
		}
	}
}

// Figure 14 inputs: Cowbird-P4 generates several times the packet rate of
// Cowbird-Spot for the same workload (no response/bookkeeping batching).
func TestP4PacketOverheadExceedsSpot(t *testing.T) {
	spot := Run(Config{System: CowbirdSpot, Workload: FasterYCSB, Threads: 8,
		RecordSize: 512, RemoteFraction: 0.79, WriteFraction: 0.1, OpsPerThread: testOps})
	p4 := Run(Config{System: CowbirdP4, Workload: FasterYCSB, Threads: 8,
		RecordSize: 512, RemoteFraction: 0.79, WriteFraction: 0.1, OpsPerThread: testOps})
	sp := spot.PktsUpPerSec + spot.PktsDownPerSec
	pp := p4.PktsUpPerSec + p4.PktsDownPerSec
	if pp < 1.2*sp {
		t.Fatalf("P4 packet rate %.0f not above Spot %.0f", pp, sp)
	}
}

// Oversubscription stretches CPU time.
func TestOversubscription(t *testing.T) {
	normal := Run(Config{System: LocalMemory, Workload: HashProbe, Threads: 16,
		RecordSize: 64, RemoteFraction: 0.95, OpsPerThread: testOps})
	over := Run(Config{System: LocalMemory, Workload: HashProbe, Threads: 16,
		RecordSize: 64, RemoteFraction: 0.95, OpsPerThread: testOps, ExtraThreads: 16})
	if over.ThroughputMOPS > 0.6*normal.ThroughputMOPS {
		t.Fatalf("oversubscribed run too fast: %.1f vs %.1f", over.ThroughputMOPS, normal.ThroughputMOPS)
	}
}

func TestSystemStrings(t *testing.T) {
	for s := LocalMemory; s <= SSD; s++ {
		if s.String() == "unknown" {
			t.Errorf("system %d has no name", s)
		}
	}
	if System(99).String() != "unknown" {
		t.Error("unknown system name")
	}
}

func BenchmarkRunCowbird16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		micro(CowbirdSpot, 16, 64)
	}
}
