package perfsim

import (
	"testing"

	"cowbird/internal/sim"
)

func TestStationFIFOByArrival(t *testing.T) {
	e := sim.NewEngine()
	st := &station{e: e}
	var order []int
	// Two arrivals at t=0 and one at t=5; service 10 each: completions at
	// 10, 20, 30 in arrival order.
	var done []int64
	e.At(0, func() { st.visitNow(10, func() { order = append(order, 1); done = append(done, e.Now()) }) })
	e.At(0, func() { st.visitNow(10, func() { order = append(order, 2); done = append(done, e.Now()) }) })
	e.At(5, func() { st.visitNow(10, func() { order = append(order, 3); done = append(done, e.Now()) }) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if done[0] != 10 || done[1] != 20 || done[2] != 30 {
		t.Fatalf("completion times = %v", done)
	}
}

func TestStationIdleGap(t *testing.T) {
	e := sim.NewEngine()
	st := &station{e: e}
	var done []int64
	e.At(0, func() { st.visitNow(10, func() { done = append(done, e.Now()) }) })
	// Arrival at 100, long after the server went idle: starts immediately.
	e.At(100, func() { st.visitNow(10, func() { done = append(done, e.Now()) }) })
	e.Run()
	if done[1] != 110 {
		t.Fatalf("idle-gap arrival finished at %d, want 110", done[1])
	}
}

func TestMultiStationParallelism(t *testing.T) {
	e := sim.NewEngine()
	ms := newMultiStation(e, 2)
	var done []int64
	for i := 0; i < 4; i++ {
		e.At(0, func() { ms.visitNow(10, func() { done = append(done, e.Now()) }) })
	}
	e.Run()
	// 4 jobs, 2 channels, 10 each: two waves at 10 and 20.
	if len(done) != 4 || done[0] != 10 || done[1] != 10 || done[2] != 20 || done[3] != 20 {
		t.Fatalf("completions = %v", done)
	}
}

func TestRunHopsChainsAndDelays(t *testing.T) {
	e := sim.NewEngine()
	c := &cluster{e: e}
	a := &station{e: e}
	b := &station{e: e}
	var at int64
	e.At(0, func() {
		c.runHops([]hop{{a, 5}, {nil, 100}, {b, 7}}, func() { at = e.Now() })
	})
	e.Run()
	if at != 112 {
		t.Fatalf("chain completed at %d, want 112", at)
	}
}

func TestAwaitAllBarriers(t *testing.T) {
	e := sim.NewEngine()
	c := &cluster{e: e}
	shared := &station{e: e}
	var got []int64
	e.Go("waiter", func(p *sim.Proc) {
		// Three chains through one station with service 10: completions at
		// 10, 20, 30; awaitAll returns them indexed.
		got = c.awaitAll(p, 3, func(i int) []hop {
			return []hop{{shared, 10}}
		})
	})
	e.Run()
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
	// All three completion times present (order by index, values the set
	// {10,20,30}).
	sum := got[0] + got[1] + got[2]
	if sum != 60 {
		t.Fatalf("completion times = %v", got)
	}
}

func TestAwaitBlocksProcess(t *testing.T) {
	e := sim.NewEngine()
	c := &cluster{e: e}
	st := &station{e: e}
	var after int64
	e.Go("w", func(p *sim.Proc) {
		t0 := p.Now()
		end := c.await(p, []hop{{st, 25}})
		if end-t0 != 25 {
			after = -1
			return
		}
		after = p.Now()
	})
	e.Run()
	if after != 25 {
		t.Fatalf("await returned at %d", after)
	}
}

func TestWithDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Threads != 1 || c.Window != 100 || c.Cores != 16 || c.BatchSize != 32 {
		t.Fatalf("defaults: %+v", c)
	}
	if c.Model.RDMAPostDoorbell == 0 {
		t.Fatal("model not defaulted")
	}
	c2 := Config{Threads: 4, Window: 7}.withDefaults()
	if c2.Threads != 4 || c2.Window != 7 {
		t.Fatal("explicit values clobbered")
	}
}

func TestNpkts(t *testing.T) {
	c := &cluster{}
	for _, tc := range []struct{ n, want int }{
		{0, 1}, {1, 1}, {1024, 1}, {1025, 2}, {2048, 2}, {2049, 3},
	} {
		if got := c.npkts(tc.n); got != tc.want {
			t.Errorf("npkts(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}
