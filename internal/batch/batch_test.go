package batch

import "testing"

// TestGrowsMonotonicallyUnderBacklog drives the controller with a backlog
// that always meets the current batch: the size must never shrink between
// rounds, must reach Max, and must stay there.
func TestGrowsMonotonicallyUnderBacklog(t *testing.T) {
	c := New(1, 64, 4)
	prev := c.Size()
	sawMax := false
	for i := 0; i < 32; i++ {
		got := c.Next(1 << 20) // effectively infinite backlog
		if got < prev {
			t.Fatalf("round %d: batch shrank under backlog: %d -> %d", i, prev, got)
		}
		if got > c.Max() {
			t.Fatalf("round %d: batch %d exceeds Max %d", i, got, c.Max())
		}
		prev = got
		sawMax = sawMax || got == c.Max()
	}
	if !sawMax {
		t.Fatalf("batch never reached Max %d under sustained backlog (final %d)", c.Max(), prev)
	}
	if c.Size() != c.Max() {
		t.Fatalf("batch left Max while backlog persisted: %d", c.Size())
	}
}

// TestDecaysToMinWithinBoundedIdleRounds saturates the controller, then
// feeds it idle rounds: it must be back at Min within DecayRounds rounds
// and never dip below Min.
func TestDecaysToMinWithinBoundedIdleRounds(t *testing.T) {
	c := New(1, 64, 4)
	for i := 0; i < 16; i++ {
		c.Next(1 << 20)
	}
	if c.Size() != 64 {
		t.Fatalf("setup: not saturated: %d", c.Size())
	}
	bound := c.DecayRounds()
	reached := -1
	for i := 0; i < bound+4; i++ {
		got := c.Next(0)
		if got < c.Min() {
			t.Fatalf("idle round %d: batch %d below Min %d", i, got, c.Min())
		}
		if got == c.Min() && reached < 0 {
			reached = i + 1
		}
	}
	if reached < 0 || reached > bound {
		t.Fatalf("decay to Min took %d idle rounds, want <= %d", reached, bound)
	}
}

// TestGracePeriodKeepsBatchAcrossShortPauses checks that a pause shorter
// than the grace period does not throw away the learned batch size — the
// point of the grace window is that bursty arrivals keep their throughput
// configuration.
func TestGracePeriodKeepsBatchAcrossShortPauses(t *testing.T) {
	c := New(1, 64, 8)
	for i := 0; i < 16; i++ {
		c.Next(1 << 20)
	}
	for i := 0; i < 7; i++ { // one short of the grace budget
		if got := c.Next(0); got != 64 {
			t.Fatalf("idle round %d inside grace: batch decayed to %d", i, got)
		}
	}
	if got := c.Next(1 << 20); got != 64 {
		t.Fatalf("burst after short pause: batch %d, want 64", got)
	}
}

// TestLatchesToBurstBacklog checks the demand latch: a deep backlog hitting
// a decayed controller is granted in one round (clamped to Max), not after
// a 1->2->4->... doubling ramp. Each ramp round is a fetch round-trip the
// burst would otherwise pay for.
func TestLatchesToBurstBacklog(t *testing.T) {
	c := New(1, 64, 4)
	if got := c.Next(48); got != 48 {
		t.Fatalf("48-deep burst against decayed controller: batch %d, want 48", got)
	}
	if got := c.Next(1 << 20); got != 64 {
		t.Fatalf("sustained backlog after latch: batch %d, want Max 64", got)
	}
	// A backlog beyond Max clamps.
	c = New(1, 64, 4)
	if got := c.Next(500); got != 64 {
		t.Fatalf("over-deep burst: batch %d, want Max 64", got)
	}
	// Shallow backlog at or just above the current batch still at least
	// doubles, so moderate load converges in logarithmic rounds.
	c = New(1, 64, 4)
	if got := c.Next(1); got != 2 {
		t.Fatalf("backlog 1 at batch 1: batch %d, want 2 (doubling floor)", got)
	}
}

// TestPartialBacklogHoldsSteady checks the middle case: backlog present but
// below the current batch neither grows nor decays the batch.
func TestPartialBacklogHoldsSteady(t *testing.T) {
	c := New(1, 64, 4)
	for i := 0; i < 16; i++ {
		c.Next(1 << 20)
	}
	for i := 0; i < 50; i++ {
		if got := c.Next(3); got != 64 {
			t.Fatalf("partial round %d: batch moved to %d", i, got)
		}
	}
	// And a partial round resets the idle streak, restarting the grace.
	for i := 0; i < 4; i++ {
		c.Next(0)
	}
	c.Next(3) // resets idle
	for i := 0; i < 4; i++ {
		if got := c.Next(0); got != 64 {
			t.Fatalf("grace not restarted by partial round: %d", got)
		}
	}
}

// TestNeverExceedsBounds fuzzes the controller with a mixed drive pattern
// and checks the invariant Min <= Size <= Max throughout, including for a
// degenerate Min == Max controller.
func TestNeverExceedsBounds(t *testing.T) {
	for _, tc := range []struct{ min, max int }{{1, 64}, {4, 32}, {16, 16}} {
		c := New(tc.min, tc.max, 4)
		seq := []int{0, 1, 1000, 0, 0, 0, 0, 0, 0, 0, 0, 0, 5, 1000, 1000, 0, 2}
		for i, b := range seq {
			got := c.Next(b)
			if got < tc.min || got > tc.max {
				t.Fatalf("bounds [%d,%d]: round %d (backlog %d) -> %d",
					tc.min, tc.max, i, b, got)
			}
		}
	}
}

// TestDefaultsApplied checks the constructor's non-positive-argument
// defaulting and min>max clamping.
func TestDefaultsApplied(t *testing.T) {
	c := New(0, 0, 0)
	if c.Min() != 1 || c.Max() != DefaultMax || c.Size() != 1 {
		t.Fatalf("defaults: min=%d max=%d cur=%d", c.Min(), c.Max(), c.Size())
	}
	c = New(100, 10, 1)
	if c.Min() != 10 || c.Max() != 10 {
		t.Fatalf("min>max clamp: min=%d max=%d", c.Min(), c.Max())
	}
}
