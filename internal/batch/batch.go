// Package batch provides the adaptive coalescing controller shared by the
// Cowbird datapaths: the Spot engine's response-batch coalescer and the
// software fabric's inbox pop both face the same trade-off. A large batch
// amortizes per-message fixed costs — doorbells, red-block bookkeeping
// writes, mutex and condvar traffic — which is what throughput wants under
// backlog; a small batch hands each item onward the moment it exists, which
// is what latency wants when the queue is nearly empty.
//
// The controller is a demand-latching ratchet driven purely by observed
// backlog: every time the producer side has at least the current batch of
// work queued, the batch jumps to the observed backlog — at least doubling —
// up to Max, so a burst arriving against a decayed controller is served at
// full batch on the very next round instead of paying a 1→2→4→… ramp of
// extra fetch round-trips. Once the queue drains, the batch halves per idle
// observation after a short grace period, until it reaches Min. There are no
// timers and no shared state — each consumer owns one Controller and calls
// Next once per service round, so the hot path costs a handful of integer
// operations and allocates nothing.
package batch

// Controller adapts a coalescing batch size between Min and Max based on
// the backlog the owner reports each service round. It is deliberately
// single-owner: the goroutine that drains the queue is the only caller, so
// no field is atomic and Next is allocation-free.
type Controller struct {
	min, max int
	// grace is how many consecutive empty observations are tolerated
	// before the batch starts decaying — a burst pause shorter than this
	// keeps the learned batch size.
	grace int

	cur  int
	idle int
}

// Defaults for constructors given non-positive arguments.
const (
	DefaultMax   = 64
	DefaultGrace = 8
)

// New returns a controller ranging over [min, max], starting at min, that
// begins decaying after grace consecutive idle observations. Non-positive
// arguments select the defaults (min 1, max DefaultMax, grace
// DefaultGrace); min is clamped to max.
func New(min, max, grace int) *Controller {
	if min <= 0 {
		min = 1
	}
	if max <= 0 {
		max = DefaultMax
	}
	if min > max {
		min = max
	}
	if grace <= 0 {
		grace = DefaultGrace
	}
	return &Controller{min: min, max: max, grace: grace, cur: min}
}

// Next reports the batch limit to use for the upcoming service round, after
// folding in the backlog observed when the round began.
//
//   - backlog >= current batch: the queue is keeping the coalescer fed —
//     latch the batch to the observed backlog, growing by at least 2x
//     (growth is monotonic under sustained backlog and saturates at Max).
//     Latching rather than doubling matters for bursty arrivals: a 64-deep
//     burst hitting a controller decayed to 1 is drained in one round, not
//     after six doubling rounds that each cost a fetch round-trip.
//   - backlog == 0: an idle round. After grace consecutive idle rounds the
//     batch halves per further idle round, reaching Min within
//     grace + log2(Max/Min) idle rounds from saturation.
//   - 0 < backlog < current batch: a partially fed round neither grows nor
//     decays — the backlog may be mid-drain, and flapping the batch on
//     every in-between observation would oscillate under steady moderate
//     load.
func (c *Controller) Next(backlog int) int {
	switch {
	case backlog >= c.cur:
		c.idle = 0
		if c.cur < c.max {
			next := c.cur * 2
			if backlog > next {
				next = backlog
			}
			if next > c.max {
				next = c.max
			}
			c.cur = next
		}
	case backlog == 0:
		if c.idle < c.grace {
			c.idle++
		} else if c.cur > c.min {
			c.cur /= 2
			if c.cur < c.min {
				c.cur = c.min
			}
		}
	default:
		c.idle = 0
	}
	return c.cur
}

// Size reports the current batch limit without observing a round.
func (c *Controller) Size() int { return c.cur }

// Min reports the lower bound.
func (c *Controller) Min() int { return c.min }

// Max reports the upper bound.
func (c *Controller) Max() int { return c.max }

// DecayRounds reports the worst-case number of consecutive idle rounds
// needed to decay from Max back to Min: the grace period plus one halving
// per round. Tests and capacity planning use it; the datapath does not.
func (c *Controller) DecayRounds() int {
	n := c.grace
	for v := c.max; v > c.min; v /= 2 {
		n++
	}
	return n
}
