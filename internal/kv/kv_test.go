package kv

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func openTest(t *testing.T, cfg Config) *Store {
	t.Helper()
	dev := NewLocalDevice(1 << 26)
	st, err := Open(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(st.Close)
	return st
}

func smallConfig() Config {
	return Config{
		IndexSize:    1 << 10,
		MemSize:      1 << 16, // 64 KiB memory
		PageSize:     1 << 12, // 4 KiB pages
		DiskReadSize: 256,
		MaxInflight:  128,
	}
}

// readSync resolves a read fully, driving pending I/O as needed.
func readSync(t *testing.T, s *Session, key []byte) ([]byte, Status) {
	t.Helper()
	val, status, err := s.Read(key, nil)
	if err != nil {
		t.Fatalf("Read(%q): %v", key, err)
	}
	if status != StatusPending {
		return val, status
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		res, err := s.CompletePending(true)
		if err != nil {
			t.Fatalf("CompletePending: %v", err)
		}
		for _, r := range res {
			if bytes.Equal(r.Key, key) {
				return r.Value, r.Status
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("cold read of %q never completed", key)
		}
	}
}

func TestUpsertReadInMemory(t *testing.T) {
	st := openTest(t, smallConfig())
	s := st.NewSession(0)
	if err := s.Upsert([]byte("alpha"), []byte("one")); err != nil {
		t.Fatal(err)
	}
	val, status := readSync(t, s, []byte("alpha"))
	if status != StatusOK || string(val) != "one" {
		t.Fatalf("got %q/%v", val, status)
	}
}

func TestReadMissing(t *testing.T) {
	st := openTest(t, smallConfig())
	s := st.NewSession(0)
	if err := s.Upsert([]byte("exists"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	_, status := readSync(t, s, []byte("missing"))
	if status != StatusNotFound {
		t.Fatalf("status = %v, want NOT_FOUND", status)
	}
}

func TestUpdateReturnsLatest(t *testing.T) {
	st := openTest(t, smallConfig())
	s := st.NewSession(0)
	for i := 0; i < 10; i++ {
		if err := s.Upsert([]byte("k"), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	val, status := readSync(t, s, []byte("k"))
	if status != StatusOK || string(val) != "v9" {
		t.Fatalf("got %q/%v", val, status)
	}
}

func TestHashCollisionChains(t *testing.T) {
	cfg := smallConfig()
	cfg.IndexSize = 1 // every key shares one chain
	st := openTest(t, cfg)
	s := st.NewSession(0)
	for i := 0; i < 50; i++ {
		if err := s.Upsert([]byte(fmt.Sprintf("key-%02d", i)), []byte(fmt.Sprintf("val-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		val, status := readSync(t, s, []byte(fmt.Sprintf("key-%02d", i)))
		if status != StatusOK || string(val) != fmt.Sprintf("val-%02d", i) {
			t.Fatalf("key %d: got %q/%v", i, val, status)
		}
	}
}

func TestSpillToDeviceAndColdRead(t *testing.T) {
	st := openTest(t, smallConfig())
	s := st.NewSession(0)
	// Write far more than MemSize so early records spill.
	const n = 2000
	val := bytes.Repeat([]byte{0xEE}, 100)
	for i := 0; i < n; i++ {
		copy(val, fmt.Sprintf("record-%04d", i))
		if err := s.Upsert([]byte(fmt.Sprintf("key-%04d", i)), val); err != nil {
			t.Fatal(err)
		}
	}
	if st.HeadAddress() == st.log.begin() {
		t.Fatal("log never spilled; test is vacuous")
	}
	// Key 0 is surely cold now.
	_, status, err := s.Read([]byte("key-0000"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if status != StatusPending {
		t.Fatalf("expected PENDING for cold key, got %v", status)
	}
	got, st2 := readSync(t, s, []byte("key-0000"))
	if st2 != StatusOK || string(got[:11]) != "record-0000" {
		t.Fatalf("cold read: %q/%v", got[:16], st2)
	}
	// A recent key is still hot.
	got, st3 := readSync(t, s, []byte(fmt.Sprintf("key-%04d", n-1)))
	if st3 != StatusOK || string(got[:11]) != fmt.Sprintf("record-%04d", n-1) {
		t.Fatalf("hot read: %q/%v", got[:16], st3)
	}
}

func TestColdReadNotFound(t *testing.T) {
	st := openTest(t, smallConfig())
	s := st.NewSession(0)
	// Force all keys through one chain so a cold miss walks the chain to
	// its end on the device.
	for i := 0; i < 1500; i++ {
		if err := s.Upsert([]byte(fmt.Sprintf("key-%04d", i)), bytes.Repeat([]byte{1}, 64)); err != nil {
			t.Fatal(err)
		}
	}
	_, status := readSync(t, s, []byte("never-written"))
	if status != StatusNotFound {
		t.Fatalf("status = %v", status)
	}
}

func TestLargeValuesCrossSpeculativeRead(t *testing.T) {
	cfg := smallConfig()
	cfg.DiskReadSize = 64 // smaller than the records
	st := openTest(t, cfg)
	s := st.NewSession(0)
	big := bytes.Repeat([]byte{0xAB}, 700)
	const n = 400
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("big-%03d", i))
		v := append([]byte(fmt.Sprintf("%03d:", i)), big...)
		if err := s.Upsert(key, v); err != nil {
			t.Fatal(err)
		}
	}
	got, status := readSync(t, s, []byte("big-000"))
	if status != StatusOK || string(got[:4]) != "000:" || len(got) != 704 {
		t.Fatalf("large cold read: %v len=%d", status, len(got))
	}
}

func TestValueLargerThanHalfPageRejectedGracefully(t *testing.T) {
	cfg := smallConfig()
	st := openTest(t, cfg)
	s := st.NewSession(0)
	too := make([]byte, int(cfg.PageSize)+1)
	if err := s.Upsert([]byte("k"), too); err == nil {
		t.Fatal("oversized record accepted")
	}
}

func TestConcurrentSessions(t *testing.T) {
	cfg := smallConfig()
	cfg.MemSize = 1 << 18
	cfg.IndexSize = 1 << 12
	st := openTest(t, cfg)
	const threads = 4
	const perThread = 800
	var wg sync.WaitGroup
	for ti := 0; ti < threads; ti++ {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			s := st.NewSession(ti)
			rng := rand.New(rand.NewSource(int64(ti)))
			val := make([]byte, 120)
			for i := 0; i < perThread; i++ {
				key := []byte(fmt.Sprintf("t%d-k%04d", ti, i))
				rng.Read(val)
				copy(val, key)
				if err := s.Upsert(key, val); err != nil {
					t.Errorf("upsert: %v", err)
					return
				}
				// Read back a random earlier key of ours.
				j := rng.Intn(i + 1)
				want := fmt.Sprintf("t%d-k%04d", ti, j)
				got, status := readSyncB(s, []byte(want))
				if status != StatusOK {
					t.Errorf("thread %d: read %s -> %v", ti, want, status)
					return
				}
				if string(got[:len(want)]) != want {
					t.Errorf("thread %d: wrong record for %s", ti, want)
					return
				}
			}
		}(ti)
	}
	wg.Wait()
}

// readSyncB is readSync without *testing.T (for use inside goroutines).
func readSyncB(s *Session, key []byte) ([]byte, Status) {
	val, status, err := s.Read(key, nil)
	if err != nil {
		return nil, StatusNotFound
	}
	if status != StatusPending {
		return val, status
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		res, err := s.CompletePending(true)
		if err != nil {
			return nil, StatusNotFound
		}
		for _, r := range res {
			if bytes.Equal(r.Key, key) {
				return r.Value, r.Status
			}
		}
	}
	return nil, StatusNotFound
}

func TestPendingContextRoundTrip(t *testing.T) {
	st := openTest(t, smallConfig())
	s := st.NewSession(0)
	for i := 0; i < 1500; i++ {
		if err := s.Upsert([]byte(fmt.Sprintf("key-%04d", i)), bytes.Repeat([]byte{9}, 64)); err != nil {
			t.Fatal(err)
		}
	}
	_, status, err := s.Read([]byte("key-0001"), "my-context")
	if err != nil || status != StatusPending {
		t.Fatalf("%v %v", status, err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		res, err := s.CompletePending(true)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) > 0 {
			if res[0].Ctx != "my-context" {
				t.Fatalf("ctx = %v", res[0].Ctx)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("pending read never completed")
		}
	}
}

func TestMaxInflightEnforced(t *testing.T) {
	cfg := smallConfig()
	cfg.MaxInflight = 2
	st := openTest(t, cfg)
	s := st.NewSession(0)
	for i := 0; i < 1500; i++ {
		if err := s.Upsert([]byte(fmt.Sprintf("key-%04d", i)), bytes.Repeat([]byte{9}, 64)); err != nil {
			t.Fatal(err)
		}
	}
	issued := 0
	for i := 0; i < 10; i++ {
		_, status, err := s.Read([]byte(fmt.Sprintf("key-%04d", i)), nil)
		if status != StatusPending {
			continue
		}
		if err != nil {
			if issued < 2 {
				t.Fatalf("rejected below the cap: %v", err)
			}
			return // correctly rejected at the cap
		}
		issued++
	}
	t.Fatal("inflight cap never enforced")
}

func TestRecordSizeAlignment(t *testing.T) {
	for _, c := range []struct{ k, v, want int }{
		{0, 0, 16},
		{1, 0, 24},
		{8, 8, 32},
		{5, 3, 24},
	} {
		if got := recordSize(c.k, c.v); got != uint64(c.want) {
			t.Errorf("recordSize(%d,%d) = %d, want %d", c.k, c.v, got, c.want)
		}
	}
}

func TestParseRecordTruncated(t *testing.T) {
	if _, _, _, _, ok := parseRecord(nil); ok {
		t.Fatal("nil parsed")
	}
	if _, _, _, _, ok := parseRecord(make([]byte, 10)); ok {
		t.Fatal("short header parsed")
	}
}

func TestDeleteHotRecord(t *testing.T) {
	st := openTest(t, smallConfig())
	s := st.NewSession(0)
	if err := s.Upsert([]byte("k"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if _, status := readSync(t, s, []byte("k")); status != StatusNotFound {
		t.Fatalf("deleted key read as %v", status)
	}
	// Re-upsert resurrects the key.
	if err := s.Upsert([]byte("k"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	val, status := readSync(t, s, []byte("k"))
	if status != StatusOK || string(val) != "v2" {
		t.Fatalf("resurrected read: %q/%v", val, status)
	}
}

func TestDeleteColdRecord(t *testing.T) {
	st := openTest(t, smallConfig())
	s := st.NewSession(0)
	for i := 0; i < 1500; i++ {
		if err := s.Upsert([]byte(fmt.Sprintf("key-%04d", i)), bytes.Repeat([]byte{7}, 64)); err != nil {
			t.Fatal(err)
		}
	}
	// Delete an early (cold) key; the tombstone itself starts hot.
	if err := s.Delete([]byte("key-0000")); err != nil {
		t.Fatal(err)
	}
	if _, status := readSync(t, s, []byte("key-0000")); status != StatusNotFound {
		t.Fatalf("deleted cold key read as %v", status)
	}
	// Push the tombstone itself into the cold region and re-check: the
	// NotFound must now come from a cold read of the tombstone.
	for i := 0; i < 1500; i++ {
		if err := s.Upsert([]byte(fmt.Sprintf("more-%04d", i)), bytes.Repeat([]byte{8}, 64)); err != nil {
			t.Fatal(err)
		}
	}
	if _, status := readSync(t, s, []byte("key-0000")); status != StatusNotFound {
		t.Fatalf("cold tombstone read as %v", status)
	}
	// Neighbors survive.
	if _, status := readSync(t, s, []byte("key-0001")); status != StatusOK {
		t.Fatalf("neighbor lost: %v", status)
	}
}

func TestLocalDeviceBounds(t *testing.T) {
	d := NewLocalDevice(100)
	s := d.Session(0)
	if _, err := s.ReadAsync(90, make([]byte, 20)); err == nil {
		t.Fatal("out of bounds read accepted")
	}
	if _, err := s.WriteAsync(90, make([]byte, 20)); err == nil {
		t.Fatal("out of bounds write accepted")
	}
	tok, err := s.WriteAsync(0, []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	done := s.Poll(10, 0)
	if len(done) != 1 || done[0] != tok {
		t.Fatalf("poll = %v", done)
	}
}

func TestOpenValidation(t *testing.T) {
	dev := NewLocalDevice(1 << 20)
	if _, err := Open(dev, Config{IndexSize: 0}); err == nil {
		t.Fatal("zero index accepted")
	}
	if _, err := Open(dev, Config{IndexSize: 8, MemSize: 100, PageSize: 64}); err == nil {
		t.Fatal("non-multiple memory size accepted")
	}
}

func BenchmarkUpsertInMemory(b *testing.B) {
	dev := NewLocalDevice(1 << 30)
	st, err := Open(dev, Config{IndexSize: 1 << 20, MemSize: 1 << 28, PageSize: 1 << 20, DiskReadSize: 256})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	s := st.NewSession(0)
	key := make([]byte, 8)
	val := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key[0], key[1], key[2], key[3] = byte(i), byte(i>>8), byte(i>>16), byte(i>>24)
		if err := s.Upsert(key, val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadHot(b *testing.B) {
	dev := NewLocalDevice(1 << 30)
	st, _ := Open(dev, Config{IndexSize: 1 << 16, MemSize: 1 << 26, PageSize: 1 << 20, DiskReadSize: 256})
	defer st.Close()
	s := st.NewSession(0)
	key := make([]byte, 8)
	val := make([]byte, 64)
	const n = 10000
	for i := 0; i < n; i++ {
		key[0], key[1] = byte(i), byte(i>>8)
		if err := s.Upsert(key, val); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key[0], key[1] = byte(i%n), byte((i%n)>>8)
		if _, status, err := s.Read(key, nil); err != nil || status != StatusOK {
			b.Fatalf("%v %v", status, err)
		}
	}
}

func TestRMWHotPath(t *testing.T) {
	st := openTest(t, smallConfig())
	s := st.NewSession(0)
	incr := func(old []byte) []byte {
		n := uint64(0)
		if len(old) == 8 {
			n = uint64(old[0]) | uint64(old[1])<<8
		}
		n++
		out := make([]byte, 8)
		out[0], out[1] = byte(n), byte(n>>8)
		return out
	}
	for i := 0; i < 10; i++ {
		status, err := s.RMW([]byte("ctr"), nil, incr)
		if err != nil || status != StatusOK {
			t.Fatalf("rmw %d: %v %v", i, status, err)
		}
	}
	val, status := readSync(t, s, []byte("ctr"))
	if status != StatusOK || val[0] != 10 {
		t.Fatalf("counter = %v (%v)", val, status)
	}
}

func TestRMWColdPath(t *testing.T) {
	st := openTest(t, smallConfig())
	s := st.NewSession(0)
	if err := s.Upsert([]byte("cold-ctr"), []byte{5}); err != nil {
		t.Fatal(err)
	}
	// Push it cold.
	for i := 0; i < 1500; i++ {
		if err := s.Upsert([]byte(fmt.Sprintf("fill-%04d", i)), bytes.Repeat([]byte{1}, 64)); err != nil {
			t.Fatal(err)
		}
	}
	double := func(old []byte) []byte {
		if len(old) == 0 {
			return []byte{1}
		}
		return []byte{old[0] * 2}
	}
	status, err := s.RMW([]byte("cold-ctr"), "tag", double)
	if err != nil {
		t.Fatal(err)
	}
	if status != StatusPending {
		t.Fatalf("cold RMW returned %v, want PENDING", status)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		res, err := s.CompletePending(true)
		if err != nil {
			t.Fatal(err)
		}
		done := false
		for _, r := range res {
			if r.Ctx == "tag" {
				if r.Status != StatusOK {
					t.Fatalf("cold RMW result: %v", r.Status)
				}
				done = true
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("cold RMW never completed")
		}
	}
	val, status := readSync(t, s, []byte("cold-ctr"))
	if status != StatusOK || val[0] != 10 {
		t.Fatalf("after cold RMW: %v (%v)", val, status)
	}
}

func TestRMWOnMissingKeyCreates(t *testing.T) {
	st := openTest(t, smallConfig())
	s := st.NewSession(0)
	status, err := s.RMW([]byte("fresh"), nil, func(old []byte) []byte {
		if old != nil {
			t.Error("old value for missing key")
		}
		return []byte("created")
	})
	if err != nil || status != StatusOK {
		t.Fatalf("%v %v", status, err)
	}
	val, status := readSync(t, s, []byte("fresh"))
	if status != StatusOK || string(val) != "created" {
		t.Fatalf("%q (%v)", val, status)
	}
}

func TestRMWConcurrentCounters(t *testing.T) {
	cfg := smallConfig()
	cfg.MemSize = 1 << 18
	st := openTest(t, cfg)
	const workers = 4
	const perWorker = 200
	incr := func(old []byte) []byte {
		n := uint32(0)
		if len(old) == 4 {
			n = uint32(old[0]) | uint32(old[1])<<8 | uint32(old[2])<<16
		}
		n++
		return []byte{byte(n), byte(n >> 8), byte(n >> 16), 0}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := st.NewSession(w)
			for i := 0; i < perWorker; i++ {
				status, err := s.RMW([]byte("shared"), nil, incr)
				if err != nil || status != StatusOK {
					t.Errorf("worker %d: %v %v", w, status, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	s := st.NewSession(99)
	val, status := readSync(t, s, []byte("shared"))
	if status != StatusOK {
		t.Fatal(status)
	}
	got := uint32(val[0]) | uint32(val[1])<<8 | uint32(val[2])<<16
	if got != workers*perWorker {
		t.Fatalf("counter = %d, want %d (lost updates)", got, workers*perWorker)
	}
}
