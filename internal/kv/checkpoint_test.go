package kv

import (
	"bytes"
	"fmt"
	"testing"
)

func TestCheckpointRecoverRoundTrip(t *testing.T) {
	dev := NewLocalDevice(1 << 26)
	st, err := Open(dev, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := st.NewSession(0)
	const n = 500
	for i := 0; i < n; i++ {
		val := []byte(fmt.Sprintf("value-%04d-%s", i, bytes.Repeat([]byte{'x'}, 40)))
		if err := s.Upsert([]byte(fmt.Sprintf("key-%04d", i)), val); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Delete([]byte("key-0042")); err != nil {
		t.Fatal(err)
	}
	var img bytes.Buffer
	if err := st.Checkpoint(&img); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Recover over the SAME device; everything is cold now.
	st2, err := Recover(dev, smallConfig(), bytes.NewReader(img.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	s2 := st2.NewSession(0)
	for _, i := range []int{0, 1, 100, 250, n - 1} {
		want := fmt.Sprintf("value-%04d", i)
		got, status := readSync(t, s2, []byte(fmt.Sprintf("key-%04d", i)))
		if status != StatusOK || string(got[:len(want)]) != want {
			t.Fatalf("key %d after recovery: %v %q", i, status, got)
		}
	}
	// The tombstone survived the checkpoint.
	if _, status := readSync(t, s2, []byte("key-0042")); status != StatusNotFound {
		t.Fatalf("deleted key resurrected: %v", status)
	}
	// The recovered store accepts new writes (fresh log addresses beyond
	// the checkpointed frontier).
	if err := s2.Upsert([]byte("post-recovery"), []byte("alive")); err != nil {
		t.Fatal(err)
	}
	got, status := readSync(t, s2, []byte("post-recovery"))
	if status != StatusOK || string(got) != "alive" {
		t.Fatalf("post-recovery write: %v %q", status, got)
	}
	// And updates to recovered keys shadow the cold versions.
	if err := s2.Upsert([]byte("key-0001"), []byte("updated")); err != nil {
		t.Fatal(err)
	}
	got, status = readSync(t, s2, []byte("key-0001"))
	if status != StatusOK || string(got) != "updated" {
		t.Fatalf("shadowing update: %v %q", status, got)
	}
}

func TestRecoverRejectsGarbage(t *testing.T) {
	dev := NewLocalDevice(1 << 20)
	if _, err := Recover(dev, smallConfig(), bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
	if _, err := Recover(dev, smallConfig(), bytes.NewReader(make([]byte, 64))); err == nil {
		t.Fatal("zero magic accepted")
	}
}

func TestRecoverRejectsPageSizeMismatch(t *testing.T) {
	dev := NewLocalDevice(1 << 24)
	st, err := Open(dev, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := st.NewSession(0)
	if err := s.Upsert([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	var img bytes.Buffer
	if err := st.Checkpoint(&img); err != nil {
		t.Fatal(err)
	}
	st.Close()
	bad := smallConfig()
	bad.PageSize *= 2
	if _, err := Recover(dev, bad, bytes.NewReader(img.Bytes())); err == nil {
		t.Fatal("page-size mismatch accepted")
	}
}

func TestCheckpointEmptyStore(t *testing.T) {
	dev := NewLocalDevice(1 << 22)
	st, err := Open(dev, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var img bytes.Buffer
	if err := st.Checkpoint(&img); err != nil {
		t.Fatal(err)
	}
	st.Close()
	st2, err := Recover(dev, smallConfig(), bytes.NewReader(img.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	s := st2.NewSession(0)
	if _, status := readSync(t, s, []byte("anything")); status != StatusNotFound {
		t.Fatal("empty store found a key")
	}
}
