package kv

import (
	"bytes"
	"fmt"
	"sync/atomic"
	"time"
)

// Status is the result of a Read.
type Status int

// Read outcomes.
const (
	StatusOK Status = iota
	StatusNotFound
	StatusPending // record is in the cold region; CompletePending delivers it
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusNotFound:
		return "NOT_FOUND"
	case StatusPending:
		return "PENDING"
	}
	return "UNKNOWN"
}

// Config sizes a store.
type Config struct {
	IndexSize    int    // hash index entries; rounded up to a power of two
	MemSize      uint64 // in-memory log bytes (the paper's "local memory")
	PageSize     uint64 // flush unit
	DiskReadSize int    // speculative cold-read size (>= max record size is ideal)
	MaxInflight  int    // per-session cap on pending cold reads
}

// DefaultConfig returns a small test-friendly configuration.
func DefaultConfig() Config {
	return Config{
		IndexSize:    1 << 16,
		MemSize:      1 << 22,
		PageSize:     1 << 16,
		DiskReadSize: 4096,
		MaxInflight:  64,
	}
}

// Store is a FASTER-style hash KV over a hybrid log.
type Store struct {
	cfg   Config
	index []atomic.Uint64 // chain heads: logical record addresses (0 = empty)
	mask  uint64
	log   *hybridLog
	dev   Device
}

// Open creates a store backed by dev.
func Open(dev Device, cfg Config) (*Store, error) {
	if cfg.IndexSize <= 0 {
		return nil, fmt.Errorf("kv: bad index size %d", cfg.IndexSize)
	}
	size := 1
	for size < cfg.IndexSize {
		size <<= 1
	}
	if cfg.DiskReadSize < recordHeader+16 {
		cfg.DiskReadSize = recordHeader + 16
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 64
	}
	l, err := newHybridLog(dev, cfg.MemSize, cfg.PageSize)
	if err != nil {
		return nil, err
	}
	return &Store{
		cfg:   cfg,
		index: make([]atomic.Uint64, size),
		mask:  uint64(size - 1),
		log:   l,
		dev:   dev,
	}, nil
}

// Close stops the background flusher.
func (st *Store) Close() { st.log.close() }

// TailAddress reports the log tail (for tests and stats).
func (st *Store) TailAddress() uint64 { return st.log.tail.Load() }

// HeadAddress reports the in-memory head (records below it are cold).
func (st *Store) HeadAddress() uint64 { return st.log.head.Load() }

// hash is FNV-1a 64.
func hash(key []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

func (st *Store) slot(key []byte) *atomic.Uint64 {
	return &st.index[hash(key)&st.mask]
}

// ReadResult is a completed cold read.
type ReadResult struct {
	Key    []byte
	Value  []byte
	Status Status
	Ctx    any // caller context passed to Read
}

// pendingRead tracks one in-flight cold read.
type pendingRead struct {
	token Token
	addr  uint64
	key   []byte
	buf   []byte
	ctx   any
	exact bool // buf sized exactly for the record (second-hop read)
}

// Session is a per-thread handle. Sessions are not goroutine-safe; use one
// per thread, like FASTER sessions.
type Session struct {
	st       *Store
	threadID int
	dev      DeviceSession
	hazard   *atomic.Uint64
	pending  map[Token]*pendingRead
	scratch  []byte
}

// NewSession opens a session for one application thread.
func (st *Store) NewSession(threadID int) *Session {
	return &Session{
		st:       st,
		threadID: threadID,
		dev:      st.dev.Session(threadID),
		hazard:   st.log.newHazard(),
		pending:  make(map[Token]*pendingRead),
		scratch:  make([]byte, st.cfg.DiskReadSize),
	}
}

// Inflight reports the number of pending cold reads.
func (s *Session) Inflight() int { return len(s.pending) }

// Upsert inserts or updates key with value (RCU append, the hybrid-log
// write path: append to the tail, then CAS the index chain head).
func (s *Session) Upsert(key, value []byte) error {
	return s.append(key, value, false)
}

// Delete removes key by appending a tombstone record: readers that reach
// the tombstone report NotFound without walking the older chain.
func (s *Session) Delete(key []byte) error {
	return s.append(key, nil, true)
}

func (s *Session) append(key, value []byte, tombstone bool) error {
	n := recordSize(len(key), len(value))
	addr, err := s.st.log.alloc(n)
	if err != nil {
		return err
	}
	slot := s.st.slot(key)
	prev := slot.Load()
	s.st.log.writeRecord(addr, prev, key, value, tombstone)
	for !slot.CompareAndSwap(prev, addr) {
		prev = slot.Load()
		s.st.log.patchPrev(addr, prev)
	}
	s.st.log.release(addr)
	return nil
}

// Read looks up key. If the record chain stays in memory the value is
// returned immediately; if the chain descends into the cold region a device
// read is issued and Read returns StatusPending — the result arrives
// through CompletePending with the given ctx.
func (s *Session) Read(key []byte, ctx any) ([]byte, Status, error) {
	addr := s.st.slot(key).Load()
	return s.walk(key, addr, ctx)
}

// walk traverses the chain starting at addr.
func (s *Session) walk(key []byte, addr uint64, ctx any) ([]byte, Status, error) {
	for addr != 0 {
		if addr < s.st.log.head.Load() {
			return nil, StatusPending, s.issueColdRead(key, addr, ctx, 0)
		}
		// In-memory lookup is two-step: a published record's header is
		// complete, so read it first, then read exactly the record — never
		// the neighboring bytes, which may belong to a record another
		// session is still writing.
		var hdr [recordHeader]byte
		if !s.st.log.readInMem(s.hazard, addr, hdr[:]) {
			continue // fell below head mid-lookup; retry as cold read
		}
		kl, vl, _ := peekLens(hdr[:])
		need := recordSize(int(kl), int(vl))
		if need > s.st.log.pageSize {
			return nil, StatusNotFound, fmt.Errorf("kv: corrupt record at %#x", addr)
		}
		buf := s.scratch
		if uint64(cap(buf)) < need {
			buf = make([]byte, need)
			s.scratch = buf
		}
		buf = buf[:need]
		if !s.st.log.readInMem(s.hazard, addr, buf) {
			continue
		}
		prev, rkey, rval, tomb, ok := parseRecord(buf)
		if !ok {
			return nil, StatusNotFound, fmt.Errorf("kv: corrupt record at %#x", addr)
		}
		if bytes.Equal(rkey, key) {
			if tomb {
				return nil, StatusNotFound, nil
			}
			out := make([]byte, len(rval))
			copy(out, rval)
			return out, StatusOK, nil
		}
		addr = prev
	}
	return nil, StatusNotFound, nil
}

// peekLens extracts the length fields from a partial record image (the
// tombstone bit is masked off).
func peekLens(buf []byte) (keyLen, valLen uint32, ok bool) {
	if len(buf) < recordHeader {
		return 0, 0, false
	}
	kl := uint32(buf[8]) | uint32(buf[9])<<8 | uint32(buf[10])<<16 | uint32(buf[11])<<24
	vl := uint32(buf[12]) | uint32(buf[13])<<8 | uint32(buf[14])<<16 | uint32(buf[15])<<24
	return kl &^ tombstoneBit, vl, true
}

// issueColdRead starts the asynchronous device read for a chain entry in
// the cold region. size 0 means the speculative DiskReadSize.
func (s *Session) issueColdRead(key []byte, addr uint64, ctx any, size int) error {
	if len(s.pending) >= s.st.cfg.MaxInflight {
		return fmt.Errorf("kv: too many pending reads (max %d)", s.st.cfg.MaxInflight)
	}
	exact := size > 0
	if size == 0 {
		size = s.st.cfg.DiskReadSize
	}
	// Clamp to the page the record lives in: records never cross pages.
	ps := s.st.log.pageSize
	if rem := ps - addr%ps; uint64(size) > rem {
		size = int(rem)
	}
	buf := make([]byte, size)
	tok, err := s.dev.ReadAsync(addr, buf)
	if err != nil {
		return err
	}
	kcopy := make([]byte, len(key))
	copy(kcopy, key)
	s.pending[tok] = &pendingRead{token: tok, addr: addr, key: kcopy, buf: buf, ctx: ctx, exact: exact}
	return nil
}

// RMW atomically transforms the value of key: update receives the current
// value (nil if absent) and returns the new one. Like FASTER's RMW, the
// operation may go pending when the current value lives in the cold region;
// the result then arrives through CompletePending (Status OK, Value holding
// the value written, Ctx the caller's ctx).
//
// Atomicity is per-key against concurrent sessions: the new record is
// published with CAS against the chain head observed during the read, and
// the whole operation retries if another session won the race.
func (s *Session) RMW(key []byte, ctx any, update func(old []byte) []byte) (Status, error) {
	for {
		headAddr := s.st.slot(key).Load()
		rc := &rmwCtx{user: ctx, update: update, head: headAddr}
		val, status, err := s.walk(key, headAddr, rc)
		if err != nil {
			return status, err
		}
		if status == StatusPending {
			return StatusPending, nil
		}
		if status == StatusNotFound {
			val = nil
		}
		if s.tryPublishRMW(key, update(val), headAddr) == nil {
			return StatusOK, nil
		}
		// Lost the race (or allocation back-pressure); retry with the new
		// chain head.
	}
}

// rmwCtx tags a pending cold read as the read half of an RMW.
type rmwCtx struct {
	user   any
	update func(old []byte) []byte
	head   uint64
}

// errRMWConflict signals a lost CAS race.
var errRMWConflict = fmt.Errorf("kv: rmw conflict")

// tryPublishRMW appends the updated record and publishes it only if the
// chain head is still the one the value was derived from.
func (s *Session) tryPublishRMW(key, newVal []byte, expectedHead uint64) error {
	n := recordSize(len(key), len(newVal))
	addr, err := s.st.log.alloc(n)
	if err != nil {
		return err
	}
	s.st.log.writeRecord(addr, expectedHead, key, newVal, false)
	ok := s.st.slot(key).CompareAndSwap(expectedHead, addr)
	s.st.log.release(addr)
	if !ok {
		// The unreachable record is log garbage, like FASTER's failed-RMW
		// allocations; it disappears when the log truncates.
		return errRMWConflict
	}
	return nil
}

// finishRMW completes the cold half of an RMW: apply the update to the
// value the device returned and publish. A lost race re-runs the whole RMW
// (which may go pending again); nil is returned in that case.
func (s *Session) finishRMW(res *ReadResult, rc *rmwCtx) (*ReadResult, error) {
	var old []byte
	if res.Status == StatusOK {
		old = res.Value
	}
	if err := s.tryPublishRMW(res.Key, rc.update(old), rc.head); err == nil {
		return &ReadResult{Key: res.Key, Value: rc.update(old), Status: StatusOK, Ctx: rc.user}, nil
	}
	status, err := s.RMW(res.Key, rc.user, rc.update)
	if err != nil {
		return nil, err
	}
	if status == StatusPending {
		return nil, nil // a fresh cold read carries the RMW now
	}
	return &ReadResult{Key: res.Key, Status: StatusOK, Ctx: rc.user}, nil
}

// CompletePending drives outstanding cold reads, following chains across
// further cold hops as needed, and returns finished results. With wait
// true it blocks until at least one result is ready (or nothing is
// pending).
func (s *Session) CompletePending(wait bool) ([]ReadResult, error) {
	var out []ReadResult
	for {
		if len(s.pending) == 0 {
			return out, nil
		}
		timeout := time.Duration(0)
		if wait && len(out) == 0 {
			timeout = time.Millisecond
		}
		toks := s.dev.Poll(64, timeout)
		for _, tok := range toks {
			pr, ok := s.pending[tok]
			if !ok {
				continue // a log-flusher token can never appear here
			}
			delete(s.pending, tok)
			res, err := s.resolve(pr)
			if err != nil {
				return out, err
			}
			if res == nil {
				continue
			}
			if rc, isRMW := res.Ctx.(*rmwCtx); isRMW {
				res, err = s.finishRMW(res, rc)
				if err != nil {
					return out, err
				}
				if res == nil {
					continue
				}
			}
			out = append(out, *res)
		}
		if !wait || len(out) > 0 {
			return out, nil
		}
	}
}

// resolve processes one completed cold read: deliver the value, follow the
// chain, or re-issue a bigger read.
func (s *Session) resolve(pr *pendingRead) (*ReadResult, error) {
	prev, rkey, rval, tomb, ok := parseRecord(pr.buf)
	if !ok {
		if pr.exact {
			return nil, fmt.Errorf("kv: corrupt cold record at %#x", pr.addr)
		}
		kl, vl, ok2 := peekLens(pr.buf)
		if !ok2 {
			return nil, fmt.Errorf("kv: corrupt cold record at %#x", pr.addr)
		}
		return nil, s.issueColdRead(pr.key, pr.addr, pr.ctx, int(recordSize(int(kl), int(vl))))
	}
	if bytes.Equal(rkey, pr.key) {
		if tomb {
			return &ReadResult{Key: pr.key, Status: StatusNotFound, Ctx: pr.ctx}, nil
		}
		val := make([]byte, len(rval))
		copy(val, rval)
		return &ReadResult{Key: pr.key, Value: val, Status: StatusOK, Ctx: pr.ctx}, nil
	}
	if prev == 0 {
		return &ReadResult{Key: pr.key, Status: StatusNotFound, Ctx: pr.ctx}, nil
	}
	// Continue the chain: it may climb back into memory (older in-memory
	// addresses are impossible — chains only descend — so prev is cold).
	return nil, s.issueColdRead(pr.key, prev, pr.ctx, 0)
}
