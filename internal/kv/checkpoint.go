package kv

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"time"
)

// This file implements a simplified form of FASTER's checkpoint/recover:
// the hash index is serialized together with the log frontier, and the log
// contents themselves are already durable on the IDevice (the cold region
// is written by the flusher as it spills). Recovery reopens a store over
// the same device: every record is then cold and reachable through the
// restored index.
//
// Unlike FASTER's CPR, checkpointing here is a stop-the-world operation:
// the caller must ensure no session mutates the store while Checkpoint
// runs. That trade keeps the mechanism small while preserving the property
// the §7 case study relies on — a restart does not lose the dataset that
// was spilled to disaggregated memory.

// checkpointMagic identifies a checkpoint stream.
const checkpointMagic = 0xC0B1_D0C5

// Checkpoint flushes the entire log to the device and writes a recovery
// image of the index to w. No session may mutate the store concurrently.
func (st *Store) Checkpoint(w io.Writer) error {
	if err := st.log.flushAll(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	var hdr [28]byte
	binary.LittleEndian.PutUint32(hdr[0:], checkpointMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(st.index)))
	binary.LittleEndian.PutUint64(hdr[8:], st.log.tail.Load())
	binary.LittleEndian.PutUint64(hdr[16:], st.log.pageSize)
	binary.LittleEndian.PutUint32(hdr[24:], 0) // reserved
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	// Sparse index dump: (slot, addr) pairs for non-empty slots.
	var rec [12]byte
	count := 0
	for i := range st.index {
		addr := st.index[i].Load()
		if addr == 0 {
			continue
		}
		binary.LittleEndian.PutUint32(rec[0:], uint32(i))
		binary.LittleEndian.PutUint64(rec[4:], addr)
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
		count++
	}
	_ = count
	return bw.Flush()
}

// Recover opens a store over dev from a checkpoint previously written by
// Checkpoint against the same device contents. All records start cold.
func Recover(dev Device, cfg Config, r io.Reader) (*Store, error) {
	br := bufio.NewReader(r)
	var hdr [28]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("kv: reading checkpoint header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != checkpointMagic {
		return nil, fmt.Errorf("kv: not a checkpoint stream")
	}
	indexSize := int(binary.LittleEndian.Uint32(hdr[4:]))
	tail := binary.LittleEndian.Uint64(hdr[8:])
	pageSize := binary.LittleEndian.Uint64(hdr[16:])
	if cfg.PageSize != 0 && cfg.PageSize != pageSize {
		return nil, fmt.Errorf("kv: checkpoint page size %d != config %d", pageSize, cfg.PageSize)
	}
	cfg.PageSize = pageSize
	cfg.IndexSize = indexSize
	st, err := Open(dev, cfg)
	if err != nil {
		return nil, err
	}
	if len(st.index) != indexSize {
		st.Close()
		return nil, fmt.Errorf("kv: index size %d not a power of two in checkpoint", indexSize)
	}
	// Position the log so every checkpointed byte is cold: head == tail ==
	// flushed == the checkpointed frontier (page-aligned by flushAll).
	st.log.tail.Store(tail)
	st.log.head.Store(tail)
	st.log.flushed.Store(tail)
	var rec [12]byte
	for {
		if _, err := io.ReadFull(br, rec[:]); err == io.EOF {
			break
		} else if err != nil {
			st.Close()
			return nil, fmt.Errorf("kv: reading checkpoint index: %w", err)
		}
		slot := binary.LittleEndian.Uint32(rec[0:])
		addr := binary.LittleEndian.Uint64(rec[4:])
		if int(slot) >= len(st.index) || addr >= tail {
			st.Close()
			return nil, fmt.Errorf("kv: corrupt checkpoint entry (slot %d, addr %#x)", slot, addr)
		}
		st.index[slot].Store(addr)
	}
	return st, nil
}

// flushAll pads the tail to the next page boundary and waits until the
// flusher has made everything durable.
func (l *hybridLog) flushAll() error {
	// Seal the current page by skipping the tail to its end (the pad bytes
	// are holes no chain references).
	for {
		a := l.tail.Load()
		if a%l.pageSize == 0 {
			break
		}
		next := (a/l.pageSize + 1) * l.pageSize
		if next-l.head.Load() > l.memSize {
			if err := l.makeRoom(next); err != nil {
				return err
			}
			continue
		}
		if l.tail.CompareAndSwap(a, next) {
			break
		}
	}
	target := l.tail.Load()
	deadline := time.Now().Add(30 * time.Second)
	for l.flushed.Load() < target {
		select {
		case <-l.stop:
			return fmt.Errorf("kv: store closed during checkpoint")
		case <-time.After(50 * time.Microsecond):
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("kv: flush stalled during checkpoint (flushed %d < tail %d)",
				l.flushed.Load(), target)
		}
	}
	return nil
}
