package kv

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Record layout in the log:
//
//	prev     uint64  // logical address of the previous record in the chain
//	keyLen   uint32  // top bit: tombstone (deletion marker)
//	valLen   uint32
//	key      [keyLen]byte
//	value    [valLen]byte
//
// Records are 8-byte aligned and never cross a page boundary (allocation
// pads to the next page instead), so page flushes always contain whole
// records and cold reads never span pages.
const recordHeader = 16

// tombstoneBit marks a deletion record in the keyLen field.
const tombstoneBit = uint32(1) << 31

func recordSize(keyLen, valLen int) uint64 {
	n := uint64(recordHeader + keyLen + valLen)
	return (n + 7) &^ 7
}

// hybridLog is FASTER's hybrid log: a circular in-memory buffer holding
// [head, tail), with everything below head flushed to the device in page
// units by a background flusher.
type hybridLog struct {
	mem      []byte
	memSize  uint64
	pageSize uint64
	numPages uint64

	tail    atomic.Uint64 // next logical address to allocate
	head    atomic.Uint64 // lowest logical address resident in memory
	flushed atomic.Uint64 // all addresses below are durable on the device

	// pages[i] counts in-flight writers into logical page slot i; the
	// flusher only flushes a page whose writer count is zero and whose end
	// the tail has passed.
	pages []atomic.Int32

	dev     Device
	devSess DeviceSession
	flushMu sync.Mutex // serializes the flusher's device session

	// hazards implements FASTER's epoch protection in hazard-pointer form:
	// a reader publishes the logical address it is copying from memory;
	// makeRoom, after advancing head, waits until no reader is protected
	// below the new head before allocations may reuse that memory. This
	// both prevents torn reads and keeps the Go race detector happy — the
	// reader/overwriter byte ranges never overlap in time.
	hazardMu sync.Mutex
	hazards  []*atomic.Uint64

	stop chan struct{}
	done chan struct{}
}

// newHazard registers a reader protection slot (one per session).
func (l *hybridLog) newHazard() *atomic.Uint64 {
	h := new(atomic.Uint64)
	l.hazardMu.Lock()
	l.hazards = append(l.hazards, h)
	l.hazardMu.Unlock()
	return h
}

// hazardsClearBelow reports whether no reader is protected below addr.
func (l *hybridLog) hazardsClearBelow(addr uint64) bool {
	l.hazardMu.Lock()
	defer l.hazardMu.Unlock()
	for _, h := range l.hazards {
		if v := h.Load(); v != 0 && v < addr {
			return false
		}
	}
	return true
}

// logBegin is the first logical address; one page is reserved so that
// address 0 can mean "nil chain pointer".
func (l *hybridLog) begin() uint64 { return l.pageSize }

func newHybridLog(dev Device, memSize, pageSize uint64) (*hybridLog, error) {
	if pageSize == 0 || memSize%pageSize != 0 || memSize/pageSize < 2 {
		return nil, fmt.Errorf("kv: memory size %d must be >= 2 pages of %d", memSize, pageSize)
	}
	l := &hybridLog{
		mem:      make([]byte, memSize),
		memSize:  memSize,
		pageSize: pageSize,
		numPages: memSize / pageSize,
		pages:    make([]atomic.Int32, memSize/pageSize),
		dev:      dev,
		devSess:  dev.Session(-1),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	l.tail.Store(l.begin())
	l.head.Store(l.begin())
	l.flushed.Store(l.begin())
	go l.flushLoop()
	return l, nil
}

func (l *hybridLog) close() {
	close(l.stop)
	<-l.done
}

// physical maps a logical address to its offset in the memory buffer.
func (l *hybridLog) physical(addr uint64) uint64 { return addr % l.memSize }

// alloc reserves n bytes (n <= pageSize) and returns the record's logical
// address. The caller must call release(addr) after the record bytes are
// fully written. alloc blocks when the log is full until the flusher frees
// space (back-pressure from a slow device).
func (l *hybridLog) alloc(n uint64) (uint64, error) {
	if n > l.pageSize {
		return 0, fmt.Errorf("kv: record of %d bytes exceeds page size %d", n, l.pageSize)
	}
	for {
		a := l.tail.Load()
		start := a
		if start%l.pageSize+n > l.pageSize {
			start = (start/l.pageSize + 1) * l.pageSize
		}
		end := start + n
		if end > l.head.Load()+l.memSize {
			if err := l.makeRoom(end); err != nil {
				return 0, err
			}
			continue
		}
		slot := (start / l.pageSize) % l.numPages
		l.pages[slot].Add(1)
		if l.tail.CompareAndSwap(a, end) {
			return start, nil
		}
		l.pages[slot].Add(-1)
	}
}

// release marks the record at addr fully written.
func (l *hybridLog) release(addr uint64) {
	l.pages[(addr/l.pageSize)%l.numPages].Add(-1)
}

// makeRoom advances head so an allocation ending at end fits, waiting for
// the flusher as needed.
func (l *hybridLog) makeRoom(end uint64) error {
	needHead := end - l.memSize
	needHead = (needHead + l.pageSize - 1) / l.pageSize * l.pageSize
	for l.flushed.Load() < needHead {
		select {
		case <-l.stop:
			return fmt.Errorf("kv: store closed during allocation")
		case <-time.After(20 * time.Microsecond):
		}
	}
	for {
		h := l.head.Load()
		if h >= needHead {
			break
		}
		if l.head.CompareAndSwap(h, needHead) {
			break
		}
	}
	// Epoch drain: wait for readers still protected below the new head.
	for !l.hazardsClearBelow(needHead) {
		select {
		case <-l.stop:
			return fmt.Errorf("kv: store closed during allocation")
		case <-time.After(5 * time.Microsecond):
		}
	}
	return nil
}

// readInMem copies [addr, addr+len(dst)) from the in-memory region into
// dst under hazard protection. It reports false if the address is (or
// becomes) below head, in which case dst is invalid and the caller must go
// to the device.
func (l *hybridLog) readInMem(hazard *atomic.Uint64, addr uint64, dst []byte) bool {
	hazard.Store(addr)
	defer hazard.Store(0)
	// Re-check after publishing the hazard: if head already passed addr,
	// makeRoom may not have seen our hazard, so the memory is not safe.
	if addr < l.head.Load() {
		return false
	}
	p := l.physical(addr)
	copy(dst, l.mem[p:p+uint64(len(dst))])
	return true
}

// writeRecord fills in a freshly allocated record. prev may be patched
// later (before publication) with patchPrev.
func (l *hybridLog) writeRecord(addr uint64, prev uint64, key, value []byte, tombstone bool) {
	p := l.physical(addr)
	binary.LittleEndian.PutUint64(l.mem[p:], prev)
	kl := uint32(len(key))
	if tombstone {
		kl |= tombstoneBit
	}
	binary.LittleEndian.PutUint32(l.mem[p+8:], kl)
	binary.LittleEndian.PutUint32(l.mem[p+12:], uint32(len(value)))
	copy(l.mem[p+recordHeader:], key)
	copy(l.mem[p+recordHeader+uint64(len(key)):], value)
}

// patchPrev updates the chain pointer of a not-yet-published record.
func (l *hybridLog) patchPrev(addr uint64, prev uint64) {
	binary.LittleEndian.PutUint64(l.mem[l.physical(addr):], prev)
}

// parseRecord decodes a record image (from memory or device).
func parseRecord(buf []byte) (prev uint64, key, value []byte, tombstone, ok bool) {
	if len(buf) < recordHeader {
		return 0, nil, nil, false, false
	}
	prev = binary.LittleEndian.Uint64(buf)
	kl := binary.LittleEndian.Uint32(buf[8:])
	tombstone = kl&tombstoneBit != 0
	kl &^= tombstoneBit
	vl := binary.LittleEndian.Uint32(buf[12:])
	end := recordHeader + uint64(kl) + uint64(vl)
	if uint64(len(buf)) < end {
		return prev, nil, nil, tombstone, false
	}
	key = buf[recordHeader : recordHeader+kl]
	value = buf[recordHeader+kl : end]
	return prev, key, value, tombstone, true
}

// flushLoop writes closed pages to the device in order and advances the
// flushed frontier.
func (l *hybridLog) flushLoop() {
	defer close(l.done)
	for {
		fp := l.flushed.Load()
		slot := (fp / l.pageSize) % l.numPages
		if l.tail.Load() >= fp+l.pageSize && l.pages[slot].Load() == 0 {
			p := l.physical(fp)
			tok, err := l.devSess.WriteAsync(fp, l.mem[p:p+l.pageSize])
			if err == nil {
				for {
					done := l.devSess.Poll(16, time.Millisecond)
					found := false
					for _, d := range done {
						if d == tok {
							found = true
						}
					}
					if found {
						break
					}
					select {
					case <-l.stop:
						return
					default:
					}
				}
			}
			l.flushed.Store(fp + l.pageSize)
			continue
		}
		select {
		case <-l.stop:
			return
		case <-time.After(20 * time.Microsecond):
		}
	}
}
