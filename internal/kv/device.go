// Package kv implements a FASTER-style key-value store (§7 of the paper):
// a lock-free hash index over a hybrid log whose mutable tail lives in
// memory and whose read-only cold region spills to an IDevice — the storage
// interface FASTER exposes and the exact point where the paper plugs in
// Cowbird ("We adapt FASTER to use Cowbird by instantiating an IDevice").
//
// The store supports concurrent sessions (one per application thread) with
// asynchronous reads from the cold region: Read returns StatusPending when
// the record lives on the device, and CompletePending drives the I/O —
// mirroring FASTER's pending-operation model and the §7 integration
// pattern (issue async I/O, poll_add, poll_wait periodically).
package kv

import (
	"errors"
	"sync"
	"time"
)

// Token identifies an asynchronous device operation within a session.
type Token uint64

// Device is the kv view of FASTER's IDevice: byte-addressable asynchronous
// storage for the read-only portion of the hybrid log. Implementations
// include local memory, a simulated SATA SSD, one-sided RDMA to a memory
// pool, and Cowbird (package devices).
type Device interface {
	// Session returns the per-thread issuing context. Sessions must be
	// usable concurrently with each other but are not themselves
	// goroutine-safe.
	Session(threadID int) DeviceSession
	// Size reports the device capacity in bytes.
	Size() uint64
}

// DeviceSession issues asynchronous I/O for one thread.
type DeviceSession interface {
	// ReadAsync fetches len(dst) bytes at off into dst. dst must stay
	// valid until the returned token completes.
	ReadAsync(off uint64, dst []byte) (Token, error)
	// WriteAsync stores src at off. src must stay valid until completion.
	WriteAsync(off uint64, src []byte) (Token, error)
	// Poll returns up to max completed tokens, waiting at most timeout
	// (0 polls exactly once).
	Poll(max int, timeout time.Duration) []Token
}

// ErrDeviceBounds reports an out-of-range device access.
var ErrDeviceBounds = errors.New("kv: device access out of bounds")

// LocalDevice is an in-memory Device: the paper's "purely local memory"
// upper-bound baseline, and the workhorse for unit tests.
type LocalDevice struct {
	mu  sync.Mutex
	buf []byte
}

// NewLocalDevice returns a device backed by size bytes of local memory.
func NewLocalDevice(size uint64) *LocalDevice {
	return &LocalDevice{buf: make([]byte, size)}
}

// Size implements Device.
func (d *LocalDevice) Size() uint64 { return uint64(len(d.buf)) }

// Session implements Device.
func (d *LocalDevice) Session(threadID int) DeviceSession {
	return &localSession{d: d}
}

type localSession struct {
	d    *LocalDevice
	next Token
	done []Token
}

func (s *localSession) op(off uint64, n int, read bool, buf []byte) (Token, error) {
	if off+uint64(n) > uint64(len(s.d.buf)) {
		return 0, ErrDeviceBounds
	}
	s.d.mu.Lock()
	if read {
		copy(buf, s.d.buf[off:])
	} else {
		copy(s.d.buf[off:], buf)
	}
	s.d.mu.Unlock()
	s.next++
	t := s.next
	s.done = append(s.done, t)
	return t, nil
}

func (s *localSession) ReadAsync(off uint64, dst []byte) (Token, error) {
	return s.op(off, len(dst), true, dst)
}

func (s *localSession) WriteAsync(off uint64, src []byte) (Token, error) {
	return s.op(off, len(src), false, src)
}

func (s *localSession) Poll(max int, _ time.Duration) []Token {
	n := len(s.done)
	if n > max {
		n = max
	}
	out := make([]Token, n)
	copy(out, s.done)
	s.done = s.done[n:]
	return out
}
